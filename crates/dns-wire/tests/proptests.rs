//! Property-based tests for the DNS wire codec.

use dns_wire::{Flags, Message, Name, RData, Record, RrClass, RrType, SoaData, SrvData};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_][a-z0-9_-]{0,20}").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..6).prop_map(|labels| {
        let s = labels.join(".");
        Name::parse(&s).unwrap()
    })
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(p, n)| RData::Mx(p, n)),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..4)
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData { mname, rname, serial, refresh, retry, expire, minimum })
            }),
        (any::<u16>(), any::<u16>(), any::<u16>(), arb_name())
            .prop_map(|(priority, weight, port, target)| RData::Srv(SrvData { priority, weight, port, target })),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|raw| RData::Unknown(4242, raw)),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        class: RrClass::In,
        ttl,
        rdata,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<u16>(),
        proptest::collection::vec(arb_name(), 0..3),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(|(id, flag_bits, qnames, answers, authorities, additionals)| Message {
            id,
            flags: Flags::from_u16(flag_bits & !0x0070), // clear reserved Z bits
            questions: qnames
                .into_iter()
                .map(|n| dns_wire::Question::new(n, RrType::A))
                .collect(),
            answers,
            authorities,
            additionals,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode is the identity on well-formed messages.
    #[test]
    fn message_round_trips(m in arb_message()) {
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, m);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Message::decode(&bytes);
    }

    /// Decoding a corrupted valid message never panics (and often errors).
    #[test]
    fn corrupted_message_never_panics(
        m in arb_message(),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut wire = m.encode();
        if wire.is_empty() { return Ok(()); }
        for (pos, val) in flips {
            let i = pos as usize % wire.len();
            wire[i] ^= val;
        }
        let _ = Message::decode(&wire);
    }

    /// Name parse/display round trip; display is lower-case.
    #[test]
    fn name_round_trips(n in arb_name()) {
        let s = n.to_string();
        let reparsed = Name::parse(&s).unwrap();
        prop_assert_eq!(&reparsed, &n);
        prop_assert_eq!(s.to_ascii_lowercase(), s);
    }

    /// Compression never changes decoded content and never grows the
    /// message beyond its uncompressed size.
    #[test]
    fn compression_is_lossless_and_never_larger(names in proptest::collection::vec(arb_name(), 1..8)) {
        let mut compressed = Vec::new();
        let mut comp = std::collections::HashMap::new();
        let mut uncompressed = Vec::new();
        for n in &names {
            n.encode_compressed(&mut compressed, &mut comp);
            n.encode_uncompressed(&mut uncompressed);
        }
        prop_assert!(compressed.len() <= uncompressed.len());
        let mut pos = 0;
        for n in &names {
            let d = Name::decode(&compressed, &mut pos).unwrap();
            prop_assert_eq!(&d, n);
        }
        prop_assert_eq!(pos, compressed.len());
    }

    /// TCP framing round trips over concatenated messages.
    #[test]
    fn tcp_framing_round_trips(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 1..5)) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend(dns_wire::tcp_frame::frame(p));
        }
        let got = dns_wire::tcp_frame::deframe_all(&stream).unwrap();
        prop_assert_eq!(got.len(), payloads.len());
        for (g, p) in got.iter().zip(&payloads) {
            prop_assert_eq!(*g, &p[..]);
        }
    }
}
