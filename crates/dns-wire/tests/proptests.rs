//! Randomized tests for the DNS wire codec, driven by a fixed
//! `xkit::rng` stream so every run exercises the same cases.

use dns_wire::{Flags, Message, Name, RData, Record, RrClass, RrType, SoaData, SrvData};
use std::net::{Ipv4Addr, Ipv6Addr};
use xkit::rng::{RngExt, SeedableRng, StdRng};

const CASES: usize = 256;

fn rng(label: u64) -> StdRng {
    StdRng::seed_from_u64(0xD_1135 ^ label)
}

const LABEL_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
const LABEL_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";

fn gen_label(r: &mut StdRng) -> String {
    let len = r.random_range(1..=21usize);
    let mut s = String::with_capacity(len);
    s.push(*r.choose(LABEL_FIRST).unwrap() as char);
    for _ in 1..len {
        s.push(*r.choose(LABEL_REST).unwrap() as char);
    }
    s
}

fn gen_name(r: &mut StdRng) -> Name {
    let labels: Vec<String> = (0..r.random_range(0..6usize)).map(|_| gen_label(r)).collect();
    Name::parse(&labels.join(".")).unwrap()
}

fn gen_bytes(r: &mut StdRng, max_len: usize) -> Vec<u8> {
    (0..r.random_range(0..max_len)).map(|_| r.random::<u8>()).collect()
}

fn gen_rdata(r: &mut StdRng) -> RData {
    match r.random_range(0..10u32) {
        0 => RData::A(Ipv4Addr::from(r.random::<u32>())),
        1 => {
            let mut o = [0u8; 16];
            o.iter_mut().for_each(|b| *b = r.random::<u8>());
            RData::Aaaa(Ipv6Addr::from(o))
        }
        2 => RData::Cname(gen_name(r)),
        3 => RData::Ns(gen_name(r)),
        4 => RData::Ptr(gen_name(r)),
        5 => RData::Mx(r.random::<u16>(), gen_name(r)),
        6 => RData::Txt((0..r.random_range(0..4usize)).map(|_| gen_bytes(r, 80)).collect()),
        7 => RData::Soa(SoaData {
            mname: gen_name(r),
            rname: gen_name(r),
            serial: r.random::<u32>(),
            refresh: r.random::<u32>(),
            retry: r.random::<u32>(),
            expire: r.random::<u32>(),
            minimum: r.random::<u32>(),
        }),
        8 => RData::Srv(SrvData {
            priority: r.random::<u16>(),
            weight: r.random::<u16>(),
            port: r.random::<u16>(),
            target: gen_name(r),
        }),
        _ => RData::Unknown(4242, gen_bytes(r, 64)),
    }
}

fn gen_record(r: &mut StdRng) -> Record {
    Record { name: gen_name(r), class: RrClass::In, ttl: r.random::<u32>(), rdata: gen_rdata(r) }
}

fn gen_message(r: &mut StdRng) -> Message {
    Message {
        id: r.random::<u16>(),
        flags: Flags::from_u16(r.random::<u16>() & !0x0070), // clear reserved Z bits
        questions: (0..r.random_range(0..3usize))
            .map(|_| dns_wire::Question::new(gen_name(r), RrType::A))
            .collect(),
        answers: (0..r.random_range(0..4usize)).map(|_| gen_record(r)).collect(),
        authorities: (0..r.random_range(0..3usize)).map(|_| gen_record(r)).collect(),
        additionals: (0..r.random_range(0..3usize)).map(|_| gen_record(r)).collect(),
    }
}

/// encode ∘ decode is the identity on well-formed messages.
#[test]
fn message_round_trips() {
    let mut r = rng(1);
    for i in 0..CASES {
        let m = gen_message(&mut r);
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, m, "case {i}");
    }
}

/// The decoder never panics on arbitrary bytes.
#[test]
fn decode_never_panics() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let bytes = gen_bytes(&mut r, 300);
        let _ = Message::decode(&bytes);
    }
}

/// Decoding a corrupted valid message never panics (and often errors).
#[test]
fn corrupted_message_never_panics() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let m = gen_message(&mut r);
        let mut wire = m.encode();
        if wire.is_empty() {
            continue;
        }
        for _ in 0..r.random_range(1..8usize) {
            let i = r.random::<u16>() as usize % wire.len();
            wire[i] ^= r.random::<u8>();
        }
        let _ = Message::decode(&wire);
    }
}

/// Name parse/display round trip; display is lower-case.
#[test]
fn name_round_trips() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let n = gen_name(&mut r);
        let s = n.to_string();
        let reparsed = Name::parse(&s).unwrap();
        assert_eq!(reparsed, n);
        assert_eq!(s.to_ascii_lowercase(), s);
    }
}

/// Compression never changes decoded content and never grows the
/// message beyond its uncompressed size.
#[test]
fn compression_is_lossless_and_never_larger() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let names: Vec<Name> = (0..r.random_range(1..8usize)).map(|_| gen_name(&mut r)).collect();
        let mut compressed = Vec::new();
        let mut comp = std::collections::HashMap::new();
        let mut uncompressed = Vec::new();
        for n in &names {
            n.encode_compressed(&mut compressed, &mut comp);
            n.encode_uncompressed(&mut uncompressed);
        }
        assert!(compressed.len() <= uncompressed.len());
        let mut pos = 0;
        for n in &names {
            let d = Name::decode(&compressed, &mut pos).unwrap();
            assert_eq!(&d, n);
        }
        assert_eq!(pos, compressed.len());
    }
}

/// TCP framing round trips over concatenated messages.
#[test]
fn tcp_framing_round_trips() {
    let mut r = rng(6);
    for _ in 0..CASES {
        let payloads: Vec<Vec<u8>> =
            (0..r.random_range(1..5usize)).map(|_| gen_bytes(&mut r, 128)).collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend(dns_wire::tcp_frame::frame(p));
        }
        let got = dns_wire::tcp_frame::deframe_all(&stream).unwrap();
        assert_eq!(got.len(), payloads.len());
        for (g, p) in got.iter().zip(&payloads) {
            assert_eq!(g, p);
        }
    }
}
