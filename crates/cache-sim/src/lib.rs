//! Trace-driven simulations of local DNS improvements (paper §8).
//!
//! Two mechanisms are studied on top of the observed logs:
//!
//! * [`whole_house`] — a shared cache in each home's router: repeated
//!   lookups for the same record within its TTL, from the same house,
//!   would be absorbed; the connections that blocked on those lookups
//!   move from `SC`/`R` to `LC` (paper: 9.8 % of all connections move,
//!   ≈22 % of SC and ≈25 % of R benefit).
//! * [`refresh`] — the same whole-house cache, additionally re-resolving
//!   every entry as it expires (Table 3: the hit rate jumps from 61 % to
//!   96.6 %, at the cost of ~144× more lookups). Following the paper, the
//!   authoritative TTL of a name is the *maximum* TTL observed for it in
//!   the trace, and names with TTLs under 10 s are not refreshed.
//! * [`refresh_selective`] — the paper's closing open question ("can we
//!   approach the 96.6 % at sane cost?"): refresh only names a house
//!   actually used at least `min_uses` times, and stop refreshing a name
//!   once it has gone unused for `idle_cutoff`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dns_context::{Analysis, ConnClass};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use zeek_lite::{DnsTransaction, Duration, Logs, Timestamp};

/// Result of the whole-house cache simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WholeHouseReport {
    /// Application connections examined.
    pub total_conns: usize,
    /// SC connections in the baseline classification.
    pub sc_conns: usize,
    /// R connections in the baseline classification.
    pub r_conns: usize,
    /// Connections that would move to `LC` given a whole-house cache.
    pub moved: usize,
    /// `moved` as a share of all connections, percent (paper: 9.8 %).
    pub moved_share_of_all_pct: f64,
    /// Share of SC connections that move, percent (paper: ~22 %).
    pub sc_benefit_pct: f64,
    /// Share of R connections that move, percent (paper: ~25 %).
    pub r_benefit_pct: f64,
}

/// Simulate a per-house shared cache over the observed lookup stream.
///
/// A lookup that finds its query name still live in the simulated house
/// cache (populated by the house's earlier lookups, honouring response
/// TTLs) would never have left the house — so every connection that
/// blocked on it becomes a local-cache connection.
pub fn whole_house(logs: &Logs, analysis: &Analysis<'_>) -> WholeHouseReport {
    // Replay the DNS log per house and decide, for each transaction,
    // whether a house cache would have answered it. The replay is the
    // streaming [`CacheReplay`] engine, so eviction semantics (and the
    // expiry boundary) are pinned in exactly one place.
    let mut replay = CacheReplay::new(Duration::from_secs(60));
    let absorbed: Vec<bool> = logs.dns.iter().map(|txn| replay.offer(txn)).collect();

    let mut sc = 0usize;
    let mut r = 0usize;
    let mut moved_sc = 0usize;
    let mut moved_r = 0usize;
    for (pair, class) in analysis.pairing.pairs.iter().zip(&analysis.classes) {
        match class {
            ConnClass::SharedCache => {
                sc += 1;
                if absorbed[pair.dns.expect("SC paired")] {
                    moved_sc += 1;
                }
            }
            ConnClass::Resolution => {
                r += 1;
                if absorbed[pair.dns.expect("R paired")] {
                    moved_r += 1;
                }
            }
            _ => {}
        }
    }
    let total = analysis.pairing.app_conn_count();
    let moved = moved_sc + moved_r;
    WholeHouseReport {
        total_conns: total,
        sc_conns: sc,
        r_conns: r,
        moved,
        moved_share_of_all_pct: pct(moved, total),
        sc_benefit_pct: pct(moved_sc, sc),
        r_benefit_pct: pct(moved_r, r),
    }
}

/// A streaming whole-house cache replay with bounded live state.
///
/// Feed DNS transactions in timestamp order (the order `Logs::sort`
/// produces — epoch-released streams satisfy it too) via [`offer`],
/// which answers whether a per-house shared cache would have absorbed
/// the lookup. Two properties distinguish this from a naive map replay:
///
/// * **Boundary**: an entry answering at its own expiry instant is
///   already dead (`expiry > ts`, strict) — the same liveness rule the
///   pairing index uses, so the two simulations cannot drift apart.
/// * **Eviction**: expired entries are removed the moment they fail a
///   liveness check, and a periodic sweep clears entries nothing asks
///   for again, so live state is bounded by the working set rather than
///   growing with the trace. Because timestamps only move forward, an
///   expired entry can never hit again; eviction is decision-neutral.
///
/// [`offer`]: CacheReplay::offer
#[derive(Debug)]
pub struct CacheReplay {
    /// Per house: query name → expiry of the cached record.
    cache: HashMap<Ipv4Addr, HashMap<String, Timestamp>>,
    sweep_interval: Duration,
    last_sweep: Timestamp,
    live: u64,
    peak_live: u64,
    evicted: u64,
    hits: u64,
    misses: u64,
}

impl CacheReplay {
    /// New replay; `sweep_interval` bounds how long an expired entry may
    /// linger when no lookup touches it again.
    pub fn new(sweep_interval: Duration) -> CacheReplay {
        CacheReplay {
            cache: HashMap::new(),
            sweep_interval,
            last_sweep: Timestamp::ZERO,
            live: 0,
            peak_live: 0,
            evicted: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Replay one transaction; true when the house cache absorbs it.
    pub fn offer(&mut self, txn: &DnsTransaction) -> bool {
        self.maybe_sweep(txn.ts);
        let house = self.cache.entry(txn.client).or_default();
        let hit = match house.get(txn.query.as_str()) {
            Some(expiry) if *expiry > txn.ts => true,
            Some(_) => {
                // Expired at (or before) this instant: evict.
                house.remove(txn.query.as_str());
                self.live -= 1;
                self.evicted += 1;
                false
            }
            None => false,
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if let Some(expires) = txn.expires_at() {
                if house.insert(txn.query.clone(), expires).is_none() {
                    self.live += 1;
                }
            }
        }
        self.peak_live = self.peak_live.max(self.live);
        hit
    }

    fn maybe_sweep(&mut self, now: Timestamp) {
        if now.since(self.last_sweep) < self.sweep_interval {
            return;
        }
        self.last_sweep = now;
        let mut dropped = 0u64;
        // lint: allow(no-map-iteration): each house is pruned independently
        for house in self.cache.values_mut() {
            house.retain(|_, expiry| {
                let alive = *expiry > now;
                if !alive {
                    dropped += 1;
                }
                alive
            });
        }
        self.cache.retain(|_, house| !house.is_empty());
        self.live -= dropped;
        self.evicted += dropped;
    }

    /// Lookups the cache absorbed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that went to the resolver.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries removed by expiry (lazy check or sweep).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Currently-live entries.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// High-water mark of live entries over the replay so far.
    pub fn peak_live(&self) -> u64 {
        self.peak_live
    }
}

/// One column of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePolicyReport {
    /// DNS-using connections driven through the cache.
    pub conns: usize,
    /// Lookups the policy performs (demand misses + refreshes).
    pub lookups: u64,
    /// Lookups per second per house.
    pub lookups_per_sec_per_house: f64,
    /// Demand hit rate, percent.
    pub hit_pct: f64,
    /// Demand miss rate, percent.
    pub miss_pct: f64,
}

/// Table 3: standard cache vs refresh-all (plus the trace geometry used
/// for the rate computations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshReport {
    /// Standard demand-driven whole-house cache.
    pub standard: CachePolicyReport,
    /// Cache that refreshes every entry at expiry.
    pub refresh_all: CachePolicyReport,
    /// Trace length used for rates, seconds.
    pub trace_secs: f64,
    /// Houses observed.
    pub houses: usize,
}

impl RefreshReport {
    /// The headline cost blow-up: refresh lookups per standard lookup
    /// (paper: ≈144×).
    pub fn lookup_ratio(&self) -> f64 {
        if self.standard.lookups == 0 {
            0.0
        } else {
            self.refresh_all.lookups as f64 / self.standard.lookups as f64
        }
    }
}

/// A name need: one DNS-using connection replayed against a house cache.
struct Need {
    ts: Timestamp,
    house: Ipv4Addr,
    /// Index into the interned name table.
    name: usize,
}

/// Gather the per-connection name needs and the per-name authoritative
/// TTLs (maximum observed TTL per query name, per the paper).
fn needs_and_ttls(logs: &Logs, analysis: &Analysis<'_>) -> (Vec<Need>, Vec<u32>, Vec<String>) {
    let mut name_ids: HashMap<&str, usize> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut max_ttl: Vec<u32> = Vec::new();
    for txn in &logs.dns {
        let id = *name_ids.entry(txn.query.as_str()).or_insert_with(|| {
            names.push(txn.query.clone());
            max_ttl.push(0);
            names.len() - 1
        });
        if let Some(ttl) = txn.min_ttl() {
            max_ttl[id] = max_ttl[id].max(ttl);
        }
    }
    let mut needs = Vec::new();
    for pair in &analysis.pairing.pairs {
        let Some(di) = pair.dns else { continue };
        let txn = &logs.dns[di];
        let conn = &logs.conns[pair.conn];
        needs.push(Need {
            ts: conn.ts,
            house: conn.id.orig_addr,
            name: name_ids[txn.query.as_str()],
        });
    }
    needs.sort_by_key(|n| n.ts);
    (needs, max_ttl, names)
}

fn trace_geometry(logs: &Logs) -> (f64, usize) {
    let houses: HashSet<Ipv4Addr> = logs.dns.iter().map(|t| t.client).collect();
    let start = logs
        .conns
        .first()
        .map(|c| c.ts)
        .or_else(|| logs.dns.first().map(|d| d.ts))
        .unwrap_or(Timestamp::ZERO);
    let end_c = logs.conns.last().map(|c| c.ts).unwrap_or(start);
    let end_d = logs.dns.last().map(|d| d.ts).unwrap_or(start);
    let end = end_c.max(end_d);
    (end.since(start).as_secs_f64().max(1.0), houses.len().max(1))
}

/// Run Table 3's two policies. `refresh_min_ttl` is the paper's 10 s
/// floor below which entries are not refreshed.
pub fn refresh(logs: &Logs, analysis: &Analysis<'_>, refresh_min_ttl: Duration) -> RefreshReport {
    let (needs, max_ttl, _names) = needs_and_ttls(logs, analysis);
    let (trace_secs, houses) = trace_geometry(logs);
    let end = logs
        .conns
        .last()
        .map(|c| c.ts)
        .unwrap_or(Timestamp::ZERO);

    // ---- standard policy ----
    let mut cache: HashMap<(Ipv4Addr, usize), Timestamp> = HashMap::new();
    let mut std_hits = 0u64;
    let mut std_misses = 0u64;
    for n in &needs {
        let ttl = max_ttl[n.name].max(1);
        let hit = cache
            .get(&(n.house, n.name))
            .map(|expiry| *expiry > n.ts)
            .unwrap_or(false);
        if hit {
            std_hits += 1;
        } else {
            std_misses += 1;
            cache.insert((n.house, n.name), n.ts + Duration::from_secs(ttl as u64));
        }
    }

    // ---- refresh-all policy ----
    // After the first demand miss for (house, name), the entry is kept
    // perpetually fresh until the end of the trace; the cost is one
    // lookup per TTL interval. Names below the TTL floor fall back to
    // demand behaviour (the paper excludes them from refreshing).
    let mut first_seen: HashMap<(Ipv4Addr, usize), Timestamp> = HashMap::new();
    let mut ref_hits = 0u64;
    let mut ref_misses = 0u64;
    let mut demand_cache: HashMap<(Ipv4Addr, usize), Timestamp> = HashMap::new();
    for n in &needs {
        let ttl = max_ttl[n.name].max(1);
        let refreshable = Duration::from_secs(ttl as u64) >= refresh_min_ttl;
        if refreshable {
            if first_seen.contains_key(&(n.house, n.name)) {
                ref_hits += 1;
            } else {
                ref_misses += 1;
                first_seen.insert((n.house, n.name), n.ts);
            }
        } else {
            // Low-TTL names behave like the standard cache.
            let hit = demand_cache
                .get(&(n.house, n.name))
                .map(|expiry| *expiry > n.ts)
                .unwrap_or(false);
            if hit {
                ref_hits += 1;
            } else {
                ref_misses += 1;
                demand_cache.insert((n.house, n.name), n.ts + Duration::from_secs(ttl as u64));
            }
        }
    }
    // Refresh lookup cost: every demand miss (both kinds) is one lookup,
    // plus one refresh per TTL interval from first sight to trace end for
    // each refreshed (house, name).
    let mut refresh_lookups: u64 = ref_misses;
    // lint: allow(no-map-iteration): order-insensitive integer fold
    for ((_, name), t0) in &first_seen {
        let ttl = max_ttl[*name].max(1) as f64;
        let window = end.since(*t0).as_secs_f64();
        refresh_lookups += (window / ttl).floor() as u64;
    }

    let policy = |lookups: u64, hits: u64, misses: u64| CachePolicyReport {
        conns: needs.len(),
        lookups,
        lookups_per_sec_per_house: lookups as f64 / trace_secs / houses as f64,
        hit_pct: pct64(hits, hits + misses),
        miss_pct: pct64(misses, hits + misses),
    };
    RefreshReport {
        standard: policy(std_misses, std_hits, std_misses),
        refresh_all: policy(refresh_lookups, ref_hits, ref_misses),
        trace_secs,
        houses,
    }
}

/// A serve-stale (RFC 8767) whole-house cache: a demand miss that finds
/// an expired entry answers *immediately* from the stale record (no
/// blocking — counted as a hit) while one background lookup refreshes it.
/// Only truly cold names miss. The lookup cost equals the standard
/// cache's (one per expiry-crossing use, plus cold misses), making this
/// the natural candidate answer to the paper's closing open question.
pub fn serve_stale(
    logs: &Logs,
    analysis: &Analysis<'_>,
    max_stale: Duration,
) -> CachePolicyReport {
    let (needs, max_ttl, _names) = needs_and_ttls(logs, analysis);
    let (trace_secs, houses) = trace_geometry(logs);
    // Entry state: expiry of the freshest copy ever fetched.
    let mut cache: HashMap<(Ipv4Addr, usize), Timestamp> = HashMap::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut lookups = 0u64;
    for n in &needs {
        let ttl = Duration::from_secs(max_ttl[n.name].max(1) as u64);
        match cache.get(&(n.house, n.name)).copied() {
            Some(expiry) if expiry > n.ts => {
                hits += 1;
            }
            Some(expiry) if n.ts.since(expiry) <= max_stale => {
                // Stale-but-usable: serve it, refresh in the background.
                hits += 1;
                lookups += 1;
                cache.insert((n.house, n.name), n.ts + ttl);
            }
            _ => {
                // Cold (or too stale to serve): the client blocks.
                misses += 1;
                lookups += 1;
                cache.insert((n.house, n.name), n.ts + ttl);
            }
        }
    }
    CachePolicyReport {
        conns: needs.len(),
        lookups,
        lookups_per_sec_per_house: lookups as f64 / trace_secs / houses as f64,
        hit_pct: pct64(hits, hits + misses),
        miss_pct: pct64(misses, hits + misses),
    }
}

/// The future-work policy: refresh only names the house used at least
/// `min_uses` times, and stop refreshing a name once `idle_cutoff` passes
/// without a use.
pub fn refresh_selective(
    logs: &Logs,
    analysis: &Analysis<'_>,
    refresh_min_ttl: Duration,
    min_uses: usize,
    idle_cutoff: Duration,
) -> CachePolicyReport {
    let (needs, max_ttl, _names) = needs_and_ttls(logs, analysis);
    let (trace_secs, houses) = trace_geometry(logs);
    let end = logs.conns.last().map(|c| c.ts).unwrap_or(Timestamp::ZERO);

    // Pass 1: per (house, name), the use timestamps.
    let mut uses: HashMap<(Ipv4Addr, usize), Vec<Timestamp>> = HashMap::new();
    for n in &needs {
        uses.entry((n.house, n.name)).or_default().push(n.ts);
    }

    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut lookups = 0u64;
    // lint: allow(no-map-iteration): order-insensitive integer fold per key
    for ((_house, name), times) in &uses {
        let ttl = max_ttl[*name].max(1);
        let ttl_d = Duration::from_secs(ttl as u64);
        let qualifies = times.len() >= min_uses && ttl_d >= refresh_min_ttl;
        if !qualifies {
            // Standard demand behaviour for this (house, name).
            let mut expiry: Option<Timestamp> = None;
            for t in times {
                if expiry.map(|e| e > *t).unwrap_or(false) {
                    hits += 1;
                } else {
                    misses += 1;
                    lookups += 1;
                    expiry = Some(*t + ttl_d);
                }
            }
            continue;
        }
        // Refresh while "warm": from each use, keep refreshing until
        // idle_cutoff elapses with no further use (or the trace ends).
        misses += 1; // first use is a cold miss
        hits += (times.len() - 1) as u64;
        lookups += 1;
        let mut horizon = times[0];
        for (i, t) in times.iter().enumerate() {
            let next_use = times.get(i + 1).copied();
            let warm_until = (*t + idle_cutoff).min(end);
            let warm_until = match next_use {
                Some(nu) if nu <= warm_until => nu,
                _ => warm_until,
            };
            if warm_until > horizon {
                let span = warm_until.since(horizon).as_secs_f64();
                lookups += (span / ttl as f64).floor() as u64;
                horizon = warm_until;
            }
        }
    }
    CachePolicyReport {
        conns: needs.len(),
        lookups,
        lookups_per_sec_per_house: lookups as f64 / trace_secs / houses as f64,
        hit_pct: pct64(hits, hits + misses),
        miss_pct: pct64(misses, hits + misses),
    }
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn pct64(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_context::AnalysisConfig;
    use zeek_lite::{Answer, ConnRecord, ConnState, DnsTransaction, FiveTuple, Proto};

    const HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const SERVER: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);

    fn txn(ts_ms: u64, query: &str, addr: Ipv4Addr, ttl: u32, rtt_ms: u64) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client: HOUSE,
            resolver: RESOLVER,
            trans_id: 1,
            query: query.into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(rtt_ms)),
            answers: vec![Answer::addr(addr, ttl)],
        }
    }

    fn conn(ts_ms: u64, dst: Ipv4Addr, uid: u64) -> ConnRecord {
        ConnRecord {
            uid,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: HOUSE,
                orig_port: 50_000 + uid as u16,
                resp_addr: dst,
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(500),
            orig_bytes: 100,
            resp_bytes: 10_000,
            orig_pkts: 4,
            resp_pkts: 8,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: Some("ssl"),
        }
    }

    /// Two blocked lookups for the same name within its TTL: a whole-house
    /// cache would absorb the second, moving its connection.
    #[test]
    fn whole_house_moves_duplicate_lookups() {
        let mut logs = Logs::default();
        logs.dns = vec![
            txn(0, "a.example.com", SERVER, 300, 4),
            txn(30_000, "a.example.com", SERVER, 300, 4),
        ];
        logs.conns = vec![conn(6, SERVER, 0), conn(30_006, SERVER, 1)];
        logs.sort();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        // Both conns block (gap ≈ 2 ms each).
        let counts = analysis.class_counts();
        assert_eq!(counts.shared_cache + counts.resolution, 2);
        let report = whole_house(&logs, &analysis);
        assert_eq!(report.moved, 1);
        assert_eq!(report.moved_share_of_all_pct, 50.0);
    }

    /// A lookup past the TTL would still miss the house cache.
    #[test]
    fn whole_house_respects_ttl() {
        let mut logs = Logs::default();
        logs.dns = vec![
            txn(0, "a.example.com", SERVER, 10, 4),
            txn(60_000, "a.example.com", SERVER, 10, 4), // 60 s later, TTL 10 s
        ];
        logs.conns = vec![conn(6, SERVER, 0), conn(60_006, SERVER, 1)];
        logs.sort();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        let report = whole_house(&logs, &analysis);
        assert_eq!(report.moved, 0);
    }

    fn many_need_logs() -> Logs {
        // One name, TTL 100 s, used every 60 s for 10 minutes → standard
        // cache alternates hit/miss; refresh-all hits everything but the
        // first.
        let mut logs = Logs::default();
        for i in 0..10u64 {
            let t = i * 60_000;
            logs.dns.push(txn(t, "a.example.com", SERVER, 100, 4));
            logs.conns.push(conn(t + 6, SERVER, i));
        }
        logs.sort();
        logs
    }

    #[test]
    fn refresh_all_beats_standard_hit_rate() {
        let logs = many_need_logs();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        let r = refresh(&logs, &analysis, Duration::from_secs(10));
        assert_eq!(r.standard.conns, 10);
        // TTL 100 s, uses every 60 s: hit, miss, hit, miss... from the
        // second use on: uses at 0(m),60(h),120(m),180(h)... → 5 misses.
        assert_eq!(r.standard.lookups, 5);
        assert!((r.standard.hit_pct - 50.0).abs() < 1e-9);
        // Refresh-all: only the first use misses.
        assert!((r.refresh_all.hit_pct - 90.0).abs() < 1e-9);
        assert!(r.refresh_all.lookups > r.standard.lookups);
        assert!(r.lookup_ratio() > 1.0);
        assert_eq!(r.houses, 1);
    }

    #[test]
    fn refresh_respects_ttl_floor() {
        // TTL 5 s < 10 s floor → no refreshing; both policies identical.
        let mut logs = Logs::default();
        for i in 0..5u64 {
            let t = i * 60_000;
            logs.dns.push(txn(t, "b.example.com", SERVER, 5, 4));
            logs.conns.push(conn(t + 6, SERVER, i));
        }
        logs.sort();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        let r = refresh(&logs, &analysis, Duration::from_secs(10));
        assert_eq!(r.standard.lookups, r.refresh_all.lookups);
        assert_eq!(r.standard.hit_pct, r.refresh_all.hit_pct);
    }

    #[test]
    fn selective_refresh_cheaper_than_refresh_all() {
        let logs = many_need_logs();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        let all = refresh(&logs, &analysis, Duration::from_secs(10));
        let sel = refresh_selective(
            &logs,
            &analysis,
            Duration::from_secs(10),
            2,
            Duration::from_secs(120),
        );
        assert!(sel.lookups <= all.refresh_all.lookups);
        assert!(sel.hit_pct >= all.standard.hit_pct);
    }

    #[test]
    fn serve_stale_hits_like_refresh_at_standard_cost() {
        let logs = many_need_logs();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        let base = refresh(&logs, &analysis, Duration::from_secs(10));
        let ss = serve_stale(&logs, &analysis, Duration::from_secs(86_400));
        // Same demand stream; only the first use misses (like refresh-all).
        assert_eq!(ss.hit_pct, base.refresh_all.hit_pct);
        // Cost stays at the standard cache's level.
        assert_eq!(ss.lookups, base.standard.lookups);
        assert!(ss.lookups < base.refresh_all.lookups);
    }

    #[test]
    fn serve_stale_respects_staleness_bound() {
        // Uses 60 s apart, TTL 100 s, max_stale 10 s: the stale window is
        // exceeded on every other use, so those block again.
        let logs = many_need_logs();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let analysis = Analysis::run(&logs, cfg);
        let tight = serve_stale(&logs, &analysis, Duration::from_secs(10));
        let loose = serve_stale(&logs, &analysis, Duration::from_secs(86_400));
        assert!(tight.hit_pct < loose.hit_pct);
    }

    #[test]
    fn cache_expiry_boundary_is_strict() {
        // txn(0, ttl=10 s, rtt=4 ms) caches until exactly 10_004 ms.
        let first = txn(0, "a.example.com", SERVER, 10, 4);
        let expiry_ms = 10_004;

        // One nanosecond (here: one millisecond) before expiry: hit.
        let mut replay = CacheReplay::new(Duration::from_secs(60));
        assert!(!replay.offer(&first));
        assert!(replay.offer(&txn(expiry_ms - 1, "a.example.com", SERVER, 10, 4)));

        // At exactly the expiry instant: dead, by the same strict `>`
        // rule the pairing index applies — and the corpse is evicted.
        let mut replay = CacheReplay::new(Duration::from_secs(60));
        assert!(!replay.offer(&first));
        assert!(!replay.offer(&txn(expiry_ms, "a.example.com", SERVER, 10, 4)));
        assert_eq!(replay.evicted(), 1);
        // The miss re-primed the cache.
        assert_eq!(replay.live(), 1);
    }

    #[test]
    fn cache_replay_state_stays_bounded() {
        // Short-TTL names looked up once each, minutes apart: the sweep
        // clears them, so live state never accumulates.
        let mut replay = CacheReplay::new(Duration::from_secs(60));
        for i in 0..50u64 {
            let name = format!("n{i}.example.com");
            assert!(!replay.offer(&txn(i * 120_000, &name, SERVER, 5, 4)));
        }
        assert!(replay.peak_live() <= 2, "peak {}", replay.peak_live());
        assert_eq!(replay.misses(), 50);
        assert_eq!(replay.evicted() + replay.live(), 50);
    }

    #[test]
    fn empty_logs_do_not_panic() {
        let logs = Logs::default();
        let analysis = Analysis::run(&logs, AnalysisConfig::default());
        let wh = whole_house(&logs, &analysis);
        assert_eq!(wh.total_conns, 0);
        let r = refresh(&logs, &analysis, Duration::from_secs(10));
        assert_eq!(r.standard.conns, 0);
        assert_eq!(r.lookup_ratio(), 0.0);
    }
}
