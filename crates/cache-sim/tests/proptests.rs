//! Property tests for the §8 cache simulators over random workloads.

use cache_sim::{refresh, refresh_selective, serve_stale, whole_house};
use dns_context::{Analysis, AnalysisConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use zeek_lite::{
    Answer, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple, Logs, Proto, Timestamp,
};

const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);

fn client(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 77, 0, 1 + (i % 3))
}
fn server(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(104, 16, 0, 1 + (i % 3))
}

/// Random (lookup, conn) workloads where each lookup is soon followed by
/// a connection to the looked-up address from the same house.
fn arb_logs() -> impl Strategy<Value = Logs> {
    proptest::collection::vec(
        (0u64..500_000, any::<u8>(), any::<u8>(), 1u32..900, 1u64..200),
        1..40,
    )
    .prop_map(|events| {
        let mut logs = Logs::default();
        for (i, (ts_ms, c, s, ttl, delay_ms)) in events.into_iter().enumerate() {
            logs.dns.push(DnsTransaction {
                ts: Timestamp::from_millis(ts_ms),
                client: client(c),
                resolver: RESOLVER,
                trans_id: i as u16,
                query: format!("svc-{}.example", s % 5),
                qtype: dns_wire::RrType::A,
                rcode: Some(dns_wire::Rcode::NoError),
                rtt: Some(Duration::from_millis(4)),
                answers: vec![Answer::addr(server(s), ttl)],
            });
            logs.conns.push(ConnRecord {
                uid: i as u64,
                ts: Timestamp::from_millis(ts_ms + 4 + delay_ms),
                id: FiveTuple {
                    orig_addr: client(c),
                    orig_port: 40_000 + i as u16,
                    resp_addr: server(s),
                    resp_port: 443,
                    proto: Proto::Tcp,
                },
                duration: Duration::from_millis(500),
                orig_bytes: 100,
                resp_bytes: 1_000,
                orig_pkts: 4,
                resp_pkts: 4,
                state: ConnState::SF,
                history: String::new(),
                service: Some("ssl"),
            });
        }
        logs.sort();
        logs
    })
}

fn acfg() -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    cfg.threshold_rule.min_lookups = 1;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hit/miss rates always partition; moved conns bounded by blocked.
    #[test]
    fn reports_are_internally_consistent(logs in arb_logs()) {
        let a = Analysis::run(&logs, acfg());
        let wh = whole_house(&logs, &a);
        prop_assert!(wh.moved <= wh.sc_conns + wh.r_conns);
        prop_assert!(wh.moved_share_of_all_pct <= 100.0 + 1e-9);
        let r = refresh(&logs, &a, Duration::from_secs(10));
        prop_assert!((r.standard.hit_pct + r.standard.miss_pct - 100.0).abs() < 1e-9
            || r.standard.conns == 0);
        prop_assert!((r.refresh_all.hit_pct + r.refresh_all.miss_pct - 100.0).abs() < 1e-9
            || r.refresh_all.conns == 0);
        prop_assert_eq!(r.standard.conns, r.refresh_all.conns);
    }

    /// Refresh-all never hits less, and never costs less, than standard.
    #[test]
    fn refresh_dominates_standard(logs in arb_logs()) {
        let a = Analysis::run(&logs, acfg());
        let r = refresh(&logs, &a, Duration::from_secs(10));
        prop_assert!(r.refresh_all.hit_pct + 1e-9 >= r.standard.hit_pct);
        prop_assert!(r.refresh_all.lookups >= r.standard.lookups);
    }

    /// Serve-stale with an unbounded staleness window matches refresh-all's
    /// hit rate at no more than the standard cache's lookup cost.
    #[test]
    fn serve_stale_bounds(logs in arb_logs()) {
        let a = Analysis::run(&logs, acfg());
        let r = refresh(&logs, &a, Duration::from_secs(10));
        let ss = serve_stale(&logs, &a, Duration(u64::MAX / 4));
        prop_assert!(ss.lookups <= r.standard.lookups);
        prop_assert!(ss.hit_pct + 1e-9 >= r.refresh_all.hit_pct);
        // And a zero staleness window degenerates to the standard cache.
        let ss0 = serve_stale(&logs, &a, Duration::ZERO);
        prop_assert_eq!(ss0.lookups, r.standard.lookups);
        prop_assert!((ss0.hit_pct - r.standard.hit_pct).abs() < 1e-9);
    }

    /// Selective refresh interpolates: cost between standard and
    /// refresh-all, hit rate at least standard's.
    #[test]
    fn selective_interpolates(logs in arb_logs(), min_uses in 1usize..6, idle in 60u64..7_200) {
        let a = Analysis::run(&logs, acfg());
        let r = refresh(&logs, &a, Duration::from_secs(10));
        let sel = refresh_selective(&logs, &a, Duration::from_secs(10), min_uses, Duration::from_secs(idle));
        prop_assert!(sel.lookups <= r.refresh_all.lookups);
        prop_assert!(sel.hit_pct + 1e-9 >= r.standard.hit_pct);
        prop_assert_eq!(sel.conns, r.standard.conns);
    }

    /// Raising the refresh TTL floor never increases the lookup cost.
    #[test]
    fn ttl_floor_monotone(logs in arb_logs()) {
        let a = Analysis::run(&logs, acfg());
        let mut last = u64::MAX;
        for floor in [1u64, 10, 60, 600, 86_400] {
            let r = refresh(&logs, &a, Duration::from_secs(floor));
            prop_assert!(r.refresh_all.lookups <= last,
                "floor {floor}s raised cost: {} > {last}", r.refresh_all.lookups);
            last = r.refresh_all.lookups;
        }
    }
}
