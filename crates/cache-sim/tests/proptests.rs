//! Randomized tests for the §8 cache simulators over random workloads,
//! driven by fixed `xkit::rng` streams so every run exercises the same
//! cases.

use cache_sim::{refresh, refresh_selective, serve_stale, whole_house};
use dns_context::{Analysis, AnalysisConfig};
use std::net::Ipv4Addr;
use xkit::rng::{RngExt, SeedableRng, StdRng};
use zeek_lite::{
    Answer, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple, Logs, Proto, Timestamp,
};

const CASES: usize = 128;

fn rng(label: u64) -> StdRng {
    StdRng::seed_from_u64(0xCAC_0E5 ^ label)
}

const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);

fn client(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 77, 0, 1 + (i % 3))
}
fn server(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(104, 16, 0, 1 + (i % 3))
}

/// Random (lookup, conn) workloads where each lookup is soon followed by
/// a connection to the looked-up address from the same house.
fn gen_logs(r: &mut StdRng) -> Logs {
    let mut logs = Logs::default();
    for i in 0..r.random_range(1..40usize) {
        let ts_ms = r.random_range(0u64..500_000);
        let c = r.random::<u8>();
        let s = r.random::<u8>();
        let ttl = r.random_range(1u32..900);
        let delay_ms = r.random_range(1u64..200);
        logs.dns.push(DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client: client(c),
            resolver: RESOLVER,
            trans_id: i as u16,
            query: format!("svc-{}.example", s % 5),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(4)),
            answers: vec![Answer::addr(server(s), ttl)],
        });
        logs.conns.push(ConnRecord {
            uid: i as u64,
            ts: Timestamp::from_millis(ts_ms + 4 + delay_ms),
            id: FiveTuple {
                orig_addr: client(c),
                orig_port: 40_000 + i as u16,
                resp_addr: server(s),
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(500),
            orig_bytes: 100,
            resp_bytes: 1_000,
            orig_pkts: 4,
            resp_pkts: 4,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: Some("ssl"),
        });
    }
    logs.sort();
    logs
}

fn acfg() -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    cfg.threshold_rule.min_lookups = 1;
    cfg
}

/// Hit/miss rates always partition; moved conns bounded by blocked.
#[test]
fn reports_are_internally_consistent() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let logs = gen_logs(&mut r);
        let a = Analysis::run(&logs, acfg());
        let wh = whole_house(&logs, &a);
        assert!(wh.moved <= wh.sc_conns + wh.r_conns);
        assert!(wh.moved_share_of_all_pct <= 100.0 + 1e-9);
        let rr = refresh(&logs, &a, Duration::from_secs(10));
        assert!(
            (rr.standard.hit_pct + rr.standard.miss_pct - 100.0).abs() < 1e-9
                || rr.standard.conns == 0
        );
        assert!(
            (rr.refresh_all.hit_pct + rr.refresh_all.miss_pct - 100.0).abs() < 1e-9
                || rr.refresh_all.conns == 0
        );
        assert_eq!(rr.standard.conns, rr.refresh_all.conns);
    }
}

/// Refresh-all never hits less, and never costs less, than standard.
#[test]
fn refresh_dominates_standard() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let logs = gen_logs(&mut r);
        let a = Analysis::run(&logs, acfg());
        let rr = refresh(&logs, &a, Duration::from_secs(10));
        assert!(rr.refresh_all.hit_pct + 1e-9 >= rr.standard.hit_pct);
        assert!(rr.refresh_all.lookups >= rr.standard.lookups);
    }
}

/// Serve-stale with an unbounded staleness window matches refresh-all's
/// hit rate at no more than the standard cache's lookup cost.
#[test]
fn serve_stale_bounds() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let logs = gen_logs(&mut r);
        let a = Analysis::run(&logs, acfg());
        let rr = refresh(&logs, &a, Duration::from_secs(10));
        let ss = serve_stale(&logs, &a, Duration(u64::MAX / 4));
        assert!(ss.lookups <= rr.standard.lookups);
        assert!(ss.hit_pct + 1e-9 >= rr.refresh_all.hit_pct);
        // And a zero staleness window degenerates to the standard cache.
        let ss0 = serve_stale(&logs, &a, Duration::ZERO);
        assert_eq!(ss0.lookups, rr.standard.lookups);
        assert!((ss0.hit_pct - rr.standard.hit_pct).abs() < 1e-9);
    }
}

/// Selective refresh interpolates: cost between standard and
/// refresh-all, hit rate at least standard's.
#[test]
fn selective_interpolates() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let logs = gen_logs(&mut r);
        let min_uses = r.random_range(1usize..6);
        let idle = r.random_range(60u64..7_200);
        let a = Analysis::run(&logs, acfg());
        let rr = refresh(&logs, &a, Duration::from_secs(10));
        let sel =
            refresh_selective(&logs, &a, Duration::from_secs(10), min_uses, Duration::from_secs(idle));
        assert!(sel.lookups <= rr.refresh_all.lookups);
        assert!(sel.hit_pct + 1e-9 >= rr.standard.hit_pct);
        assert_eq!(sel.conns, rr.standard.conns);
    }
}

/// Raising the refresh TTL floor never increases the lookup cost.
#[test]
fn ttl_floor_monotone() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let logs = gen_logs(&mut r);
        let a = Analysis::run(&logs, acfg());
        let mut last = u64::MAX;
        for floor in [1u64, 10, 60, 600, 86_400] {
            let rr = refresh(&logs, &a, Duration::from_secs(floor));
            assert!(
                rr.refresh_all.lookups <= last,
                "floor {floor}s raised cost: {} > {last}",
                rr.refresh_all.lookups
            );
            last = rr.refresh_all.lookups;
        }
    }
}
