//! DN-Hunter pairing: matching connections with the DNS lookups they use.
//!
//! The paper (§4): *"Consider an application connection originating from
//! local IP address L and destined for remote IP address R. We pair that
//! connection with the most recent non-expired DNS lookup conducted by L
//! that contains R in the answer (if such exists). If all previous DNS
//! lookups containing R are expired, we use the most recent."*
//!
//! Pairing ambiguity (several non-expired lookups containing R, from CDN
//! co-hosting) is counted, and the alternate random-candidate policy the
//! paper used as a robustness check is available as
//! [`PairingPolicy::RandomNonExpired`].

use xkit::rng::StdRng;
use xkit::rng::{RngExt, SeedableRng};
use std::collections::hash_map::Entry;
use xkit::collections::FastMap;
use std::net::Ipv4Addr;
use zeek_lite::{ConnRecord, DnsTransaction, Duration, Timestamp};

/// Which candidate lookup a connection pairs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingPolicy {
    /// The paper's main policy: the most recent non-expired candidate.
    MostRecent,
    /// The paper's robustness check: a uniformly random non-expired
    /// candidate (seeded for reproducibility).
    RandomNonExpired,
}

/// Pairing outcome for one application connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedConn {
    /// Index into the connection log.
    pub conn: usize,
    /// Index into the DNS log of the paired lookup, if any.
    pub dns: Option<usize>,
    /// Connection start minus lookup completion (`None` when unpaired).
    pub gap: Option<Duration>,
    /// The paired lookup's record had expired before the connection began.
    pub expired: bool,
    /// Number of non-expired candidate lookups at connection start
    /// (the paper's ambiguity measure; 0 when only expired candidates).
    pub candidates: usize,
    /// This connection is the earliest to use its paired lookup.
    pub first_use: bool,
}

/// One lookup's relevance to one address, packed flat in the arena.
///
/// `key` packs (client, answer address); a single global sort on
/// `(key, completed, dns_idx)` groups each key's entries contiguously in
/// exactly the order the old per-key `Vec` sort produced, so lookups
/// become span scans over one allocation instead of a map of Vecs.
#[derive(Debug, Clone, Copy)]
struct ArenaEntry {
    key: u64,
    completed: Timestamp,
    expires: Timestamp,
    dns_idx: u32,
}

#[inline]
fn pack_key(client: Ipv4Addr, addr: Ipv4Addr) -> u64 {
    (u64::from(u32::from(client)) << 32) | u64::from(u32::from(addr))
}

/// Reusable buffers for [`Pairing::build_with`].
///
/// A default scratch starts empty; passing the same scratch to repeated
/// builds (the repro sweep, windowed re-analysis) reuses the arena, the
/// span map, and the first-use tables instead of reallocating them.
#[derive(Default)]
pub struct PairingScratch {
    arena: Vec<ArenaEntry>,
    /// Entries in dns-log order, before placement into keyed runs.
    staged: Vec<ArenaEntry>,
    /// Keys in first-seen order — the deterministic traversal the
    /// counting sort uses instead of iterating the map.
    keys_in_order: Vec<u64>,
    /// `packed key -> (start, end)` run in the arena. FxHash map:
    /// addressed by key only, never iterated (bucket order must not
    /// leak into output).
    spans: FastMap<u64, (u32, u32)>,
    first_use_ts: Vec<Timestamp>,
    claimed: Vec<u64>,
}

/// Sentinel for "no connection has used this lookup yet".
const UNSEEN: Timestamp = Timestamp(u64::MAX);

/// The pairing index and results.
pub struct Pairing {
    /// One entry per *application* connection, in connection-log order.
    pub pairs: Vec<PairedConn>,
    /// Indices (into the conn log) of the application connections that
    /// were analysed, in the same order as `pairs`.
    pub app_conn_indices: Vec<usize>,
    /// For each DNS-log index: whether any connection paired with it.
    pub dns_used: Vec<bool>,
}

impl Pairing {
    /// Pair every application connection in `conns` against `dns`.
    ///
    /// Both logs must be time-sorted ([`zeek_lite::Logs`] guarantees it).
    /// DNS-service connections are excluded from the application set, as
    /// in the paper (the DNS log is its own dataset). The random policy
    /// draws from a fixed-seed RNG so analyses are reproducible.
    pub fn build(conns: &[ConnRecord], dns: &[DnsTransaction], policy: PairingPolicy) -> Pairing {
        let mut scratch = PairingScratch::default();
        Self::build_with(&mut scratch, conns, dns, policy)
    }

    /// [`Pairing::build`] with caller-provided scratch buffers, so the
    /// arena and index tables are reused across repeated builds.
    pub fn build_with(
        scratch: &mut PairingScratch,
        conns: &[ConnRecord],
        dns: &[DnsTransaction],
        policy: PairingPolicy,
    ) -> Pairing {
        assert!(dns.len() <= u32::MAX as usize, "dns log exceeds u32 arena indices");
        // Flat arena of (client, answer address) entries, grouped into
        // per-key runs by a counting sort: stage entries in dns order,
        // count per key, carve contiguous runs (in first-seen key order),
        // place, then sort each run by (completed, dns_idx). Run contents
        // and internal order match what a global (key, completed, dns_idx)
        // sort produces; only the cross-key arrangement differs, and no
        // consumer observes that — every read goes through `spans`. The
        // dns log is ts-sorted, so each run arrives nearly sorted by
        // completion time and its per-run sort is close to linear.
        let staged = &mut scratch.staged;
        staged.clear();
        for (i, txn) in dns.iter().enumerate() {
            let (Some(completed), Some(expires)) = (txn.completed_at(), txn.expires_at()) else {
                continue;
            };
            for addr in txn.addrs() {
                staged.push(ArenaEntry {
                    key: pack_key(txn.client, addr),
                    completed,
                    expires,
                    dns_idx: i as u32,
                });
            }
        }
        let spans = &mut scratch.spans;
        spans.clear();
        let keys_in_order = &mut scratch.keys_in_order;
        keys_in_order.clear();
        for e in staged.iter() {
            match spans.entry(e.key) {
                Entry::Occupied(mut o) => o.get_mut().1 += 1,
                Entry::Vacant(v) => {
                    v.insert((0, 1));
                    keys_in_order.push(e.key);
                }
            }
        }
        let mut offset = 0u32;
        for k in keys_in_order.iter() {
            let slot = spans.get_mut(k).expect("counted key");
            let count = slot.1;
            // (start, cursor); the cursor advances to `end` during placement.
            *slot = (offset, offset);
            offset += count;
        }
        let arena = &mut scratch.arena;
        arena.clear();
        arena.resize(
            staged.len(),
            ArenaEntry { key: 0, completed: UNSEEN, expires: UNSEEN, dns_idx: 0 },
        );
        for e in staged.iter() {
            let slot = spans.get_mut(&e.key).expect("counted key");
            arena[slot.1 as usize] = *e;
            slot.1 += 1;
        }
        for k in keys_in_order.iter() {
            let &(s, e) = spans.get(k).expect("counted key");
            arena[s as usize..e as usize].sort_unstable_by_key(|en| (en.completed, en.dns_idx));
        }

        let mut rng = StdRng::seed_from_u64(0x5ca1ab1e);
        let mut pairs = Vec::with_capacity(conns.len());
        let mut app_conn_indices = Vec::with_capacity(conns.len());
        let mut dns_used = vec![false; dns.len()];

        for (ci, conn) in conns.iter().enumerate() {
            if conn.is_dns() {
                continue;
            }
            app_conn_indices.push(ci);
            let key = pack_key(conn.id.orig_addr, conn.id.resp_addr);
            let unpaired = PairedConn {
                conn: ci,
                dns: None,
                gap: None,
                expired: false,
                candidates: 0,
                first_use: false,
            };
            let span = spans.get(&key).map(|&(s, e)| &arena[s as usize..e as usize]);
            let pair = match span {
                None => unpaired,
                Some(entries) => {
                    // Only lookups completed at or before the connection start.
                    let upto = entries.partition_point(|e| e.completed <= conn.ts);
                    if upto == 0 {
                        unpaired
                    } else {
                        let prior = &entries[..upto];
                        // Count live candidates in place (remembering the
                        // last one) rather than collecting them into a Vec;
                        // the random policy draws an index over that count
                        // and rescans to it, preserving the draw sequence.
                        let mut live_count = 0usize;
                        let mut last_live = None;
                        for e in prior {
                            if e.expires > conn.ts {
                                live_count += 1;
                                last_live = Some(e);
                            }
                        }
                        let (chosen, expired) = if live_count == 0 {
                            (prior.last().unwrap(), true)
                        } else {
                            match policy {
                                PairingPolicy::MostRecent => (last_live.unwrap(), false),
                                PairingPolicy::RandomNonExpired => {
                                    let k = rng.random_range(0..live_count);
                                    let mut seen = 0usize;
                                    let mut hit = last_live.unwrap();
                                    for e in prior {
                                        if e.expires > conn.ts {
                                            if seen == k {
                                                hit = e;
                                                break;
                                            }
                                            seen += 1;
                                        }
                                    }
                                    (hit, false)
                                }
                            }
                        };
                        PairedConn {
                            conn: ci,
                            dns: Some(chosen.dns_idx as usize),
                            gap: Some(conn.ts.since(chosen.completed)),
                            expired,
                            candidates: live_count,
                            first_use: false, // filled below
                        }
                    }
                }
            };
            pairs.push(pair);
        }

        // First-use determination: the earliest-starting connection paired
        // with each lookup (conn log is ts-sorted, so first pairing wins).
        // Indexed by dns position instead of a HashMap.
        let first_use_ts = &mut scratch.first_use_ts;
        first_use_ts.clear();
        first_use_ts.resize(dns.len(), UNSEEN);
        for pair in &pairs {
            if let Some(di) = pair.dns {
                dns_used[di] = true;
                if first_use_ts[di] == UNSEEN {
                    first_use_ts[di] = conns[pair.conn].ts;
                }
            }
        }
        // Ties on timestamp: exactly one connection (the earliest in log
        // order) is the first use. Single deterministic pass over a bit set.
        let claimed = &mut scratch.claimed;
        claimed.clear();
        claimed.resize((dns.len() + 63) / 64, 0);
        for pair in &mut pairs {
            if let Some(di) = pair.dns {
                let (word, bit) = (di / 64, 1u64 << (di % 64));
                if first_use_ts[di] == conns[pair.conn].ts && claimed[word] & bit == 0 {
                    claimed[word] |= bit;
                    pair.first_use = true;
                } else {
                    pair.first_use = false;
                }
            }
        }

        Pairing { pairs, app_conn_indices, dns_used }
    }

    /// Number of application connections analysed.
    pub fn app_conn_count(&self) -> usize {
        self.pairs.len()
    }

    /// Pairing outcomes as an obs snapshot: `pair.hit` (non-expired
    /// pairing), `pair.fallback` (expired-record pairing), `pair.miss`
    /// (no candidate lookup), `pair.first_use`, `pair.app_conns`, and a
    /// `pair.gap_ms` histogram over connection-start − lookup-completion
    /// gaps. `hit + fallback + miss == app_conns` by construction.
    pub fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        let mut hit = 0u64;
        let mut fallback = 0u64;
        let mut miss = 0u64;
        let mut first_use = 0u64;
        for p in &self.pairs {
            match (p.dns, p.expired) {
                (Some(_), false) => hit += 1,
                (Some(_), true) => fallback += 1,
                (None, _) => miss += 1,
            }
            first_use += u64::from(p.first_use);
            if let Some(gap) = p.gap {
                m.observe_with("pair.gap_ms", xkit::obs::HistSpec::time_ms(), gap.as_millis_f64());
            }
        }
        m.add("pair.hit", hit);
        m.add("pair.fallback", fallback);
        m.add("pair.miss", miss);
        m.add("pair.first_use", first_use);
        m.add("pair.app_conns", self.pairs.len() as u64);
        m
    }

    /// Fraction of *paired* connections with exactly one non-expired
    /// candidate (the paper reports 82 %).
    pub fn single_candidate_share(&self) -> f64 {
        let paired_live: Vec<&PairedConn> = self
            .pairs
            .iter()
            .filter(|p| p.dns.is_some() && !p.expired)
            .collect();
        if paired_live.is_empty() {
            return 0.0;
        }
        let single = paired_live.iter().filter(|p| p.candidates == 1).count();
        single as f64 / paired_live.len() as f64
    }

    /// Count and share of answered-with-addresses lookups never used by
    /// any connection (the paper's 37.8 % unused lookups). One pass over
    /// the has_addrs and rtt columns.
    pub fn unused_lookups(&self, dns: &zeek_lite::DnsColumns) -> (usize, f64) {
        let mut eligible = 0usize;
        let mut unused = 0usize;
        for i in 0..dns.len() {
            if dns.has_addrs[i] && dns.rtt[i].is_some() {
                eligible += 1;
                unused += usize::from(!self.dns_used[i]);
            }
        }
        if eligible == 0 {
            return (0, 0.0);
        }
        (unused, unused as f64 / eligible as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeek_lite::{Answer, ConnState, FiveTuple, Proto};

    const HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const OTHER_HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const SERVER: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);

    fn txn(ts_ms: u64, client: Ipv4Addr, addr: Ipv4Addr, ttl: u32) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client,
            resolver: RESOLVER,
            trans_id: 1,
            query: "www.example.com".into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(10)),
            answers: vec![Answer::addr(addr, ttl)],
        }
    }

    fn conn(ts_ms: u64, client: Ipv4Addr, dst: Ipv4Addr, port: u16) -> ConnRecord {
        ConnRecord {
            uid: ts_ms,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: client,
                orig_port: 50_000,
                resp_addr: dst,
                resp_port: port,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(500),
            orig_bytes: 100,
            resp_bytes: 1_000,
            orig_pkts: 4,
            resp_pkts: 4,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: zeek_lite_service(port),
        }
    }

    fn zeek_lite_service(port: u16) -> Option<&'static str> {
        match port {
            53 => Some("dns"),
            443 => Some("ssl"),
            _ => None,
        }
    }

    #[test]
    fn pairs_with_most_recent_non_expired() {
        // Two lookups for the same address; conn starts after both.
        let dns = vec![
            txn(0, HOUSE, SERVER, 300),
            txn(5_000, HOUSE, SERVER, 300),
        ];
        let conns = vec![conn(6_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs.len(), 1);
        let pair = &p.pairs[0];
        assert_eq!(pair.dns, Some(1));
        assert!(!pair.expired);
        assert_eq!(pair.candidates, 2);
        // Gap = 6000 − (5000 + 10 rtt).
        assert_eq!(pair.gap, Some(Duration::from_millis(990)));
    }

    #[test]
    fn expired_fallback_uses_most_recent() {
        let dns = vec![txn(0, HOUSE, SERVER, 1), txn(2_000, HOUSE, SERVER, 1)];
        // Conn starts long after both TTLs (1 s) expired.
        let conns = vec![conn(60_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let pair = &p.pairs[0];
        assert_eq!(pair.dns, Some(1));
        assert!(pair.expired);
        assert_eq!(pair.candidates, 0);
    }

    #[test]
    fn unpaired_when_no_lookup_contains_address() {
        let dns = vec![txn(0, HOUSE, SERVER, 300)];
        let conns = vec![conn(1_000, HOUSE, Ipv4Addr::new(9, 9, 9, 9), 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].dns, None);
    }

    #[test]
    fn other_clients_lookups_do_not_pair() {
        let dns = vec![txn(0, OTHER_HOUSE, SERVER, 300)];
        let conns = vec![conn(1_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].dns, None);
    }

    #[test]
    fn lookup_completing_after_conn_start_is_ignored() {
        // Lookup at t=1000 ms completes at 1010; conn starts at 1005.
        let dns = vec![txn(1_000, HOUSE, SERVER, 300)];
        let conns = vec![conn(1_005, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].dns, None);
    }

    #[test]
    fn dns_conns_excluded_from_app_set() {
        let dns = vec![txn(0, HOUSE, SERVER, 300)];
        let conns = vec![conn(1_000, HOUSE, RESOLVER, 53), conn(2_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.app_conn_count(), 1);
        assert_eq!(p.app_conn_indices, vec![1]);
    }

    #[test]
    fn first_use_marks_exactly_one_conn_per_lookup() {
        let dns = vec![txn(0, HOUSE, SERVER, 300)];
        let conns = vec![
            conn(1_000, HOUSE, SERVER, 443),
            conn(2_000, HOUSE, SERVER, 443),
            conn(3_000, HOUSE, SERVER, 443),
        ];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let firsts: Vec<bool> = p.pairs.iter().map(|x| x.first_use).collect();
        assert_eq!(firsts, vec![true, false, false]);
    }

    #[test]
    fn unused_lookup_accounting() {
        let dns = vec![txn(0, HOUSE, SERVER, 300), txn(100, HOUSE, Ipv4Addr::new(9, 9, 9, 9), 300)];
        let conns = vec![conn(1_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let (unused, share) = p.unused_lookups(&zeek_lite::DnsColumns::from_rows(&dns));
        assert_eq!(unused, 1);
        assert!((share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_candidate_share_counts_ambiguity() {
        let dns = vec![
            txn(0, HOUSE, SERVER, 3_000),
            txn(1_000, HOUSE, SERVER, 3_000),
        ];
        let conns = vec![conn(5_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].candidates, 2);
        assert_eq!(p.single_candidate_share(), 0.0);
    }

    #[test]
    fn random_policy_picks_live_candidates() {
        let dns = vec![
            txn(0, HOUSE, SERVER, 3_000),
            txn(1_000, HOUSE, SERVER, 3_000),
            txn(2_000, HOUSE, SERVER, 3_000),
        ];
        let conns: Vec<ConnRecord> = (0..50).map(|i| conn(5_000 + i, HOUSE, SERVER, 443)).collect();
        let p = Pairing::build(&conns, &dns, PairingPolicy::RandomNonExpired);
        let mut seen = std::collections::HashSet::new();
        for pair in &p.pairs {
            assert!(!pair.expired);
            seen.insert(pair.dns.unwrap());
        }
        assert!(seen.len() > 1, "random policy should spread: {seen:?}");
    }
}
