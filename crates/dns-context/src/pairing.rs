//! DN-Hunter pairing: matching connections with the DNS lookups they use.
//!
//! The paper (§4): *"Consider an application connection originating from
//! local IP address L and destined for remote IP address R. We pair that
//! connection with the most recent non-expired DNS lookup conducted by L
//! that contains R in the answer (if such exists). If all previous DNS
//! lookups containing R are expired, we use the most recent."*
//!
//! Pairing ambiguity (several non-expired lookups containing R, from CDN
//! co-hosting) is counted, and the alternate random-candidate policy the
//! paper used as a robustness check is available as
//! [`PairingPolicy::RandomNonExpired`].

use xkit::rng::StdRng;
use xkit::rng::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use zeek_lite::{ConnRecord, DnsTransaction, Duration, Timestamp};

/// Which candidate lookup a connection pairs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingPolicy {
    /// The paper's main policy: the most recent non-expired candidate.
    MostRecent,
    /// The paper's robustness check: a uniformly random non-expired
    /// candidate (seeded for reproducibility).
    RandomNonExpired,
}

/// Pairing outcome for one application connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedConn {
    /// Index into the connection log.
    pub conn: usize,
    /// Index into the DNS log of the paired lookup, if any.
    pub dns: Option<usize>,
    /// Connection start minus lookup completion (`None` when unpaired).
    pub gap: Option<Duration>,
    /// The paired lookup's record had expired before the connection began.
    pub expired: bool,
    /// Number of non-expired candidate lookups at connection start
    /// (the paper's ambiguity measure; 0 when only expired candidates).
    pub candidates: usize,
    /// This connection is the earliest to use its paired lookup.
    pub first_use: bool,
}

/// One lookup's relevance to one address.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    completed: Timestamp,
    expires: Timestamp,
    dns_idx: usize,
}

/// The pairing index and results.
pub struct Pairing {
    /// One entry per *application* connection, in connection-log order.
    pub pairs: Vec<PairedConn>,
    /// Indices (into the conn log) of the application connections that
    /// were analysed, in the same order as `pairs`.
    pub app_conn_indices: Vec<usize>,
    /// For each DNS-log index: whether any connection paired with it.
    pub dns_used: Vec<bool>,
}

impl Pairing {
    /// Pair every application connection in `conns` against `dns`.
    ///
    /// Both logs must be time-sorted ([`zeek_lite::Logs`] guarantees it).
    /// DNS-service connections are excluded from the application set, as
    /// in the paper (the DNS log is its own dataset). The random policy
    /// draws from a fixed-seed RNG so analyses are reproducible.
    pub fn build(conns: &[ConnRecord], dns: &[DnsTransaction], policy: PairingPolicy) -> Pairing {
        // Index lookups by (client, answer address), entries sorted by
        // completion time (insertion order is ts order, and rtt jitter is
        // small; sort anyway for strictness).
        let mut index: HashMap<(Ipv4Addr, Ipv4Addr), Vec<IndexEntry>> = HashMap::new();
        for (i, txn) in dns.iter().enumerate() {
            let (Some(completed), Some(expires)) = (txn.completed_at(), txn.expires_at()) else {
                continue;
            };
            for addr in txn.addrs() {
                index
                    .entry((txn.client, addr))
                    .or_default()
                    .push(IndexEntry { completed, expires, dns_idx: i });
            }
        }
        for entries in index.values_mut() {
            // Explicit total order: completion time, then dns-log position.
            // (Identical to the previous stable sort, but spelled out so
            // the streaming engine can reproduce it entry by entry.)
            entries.sort_by_key(|e| (e.completed, e.dns_idx));
        }

        let mut rng = StdRng::seed_from_u64(0x5ca1ab1e);
        let mut pairs = Vec::new();
        let mut app_conn_indices = Vec::new();
        let mut dns_used = vec![false; dns.len()];
        let mut first_use_ts: HashMap<usize, Timestamp> = HashMap::new();

        for (ci, conn) in conns.iter().enumerate() {
            if conn.is_dns() {
                continue;
            }
            app_conn_indices.push(ci);
            let key = (conn.id.orig_addr, conn.id.resp_addr);
            let pair = match index.get(&key) {
                None => PairedConn {
                    conn: ci,
                    dns: None,
                    gap: None,
                    expired: false,
                    candidates: 0,
                    first_use: false,
                },
                Some(entries) => {
                    // Only lookups completed at or before the connection start.
                    let upto = entries.partition_point(|e| e.completed <= conn.ts);
                    if upto == 0 {
                        PairedConn {
                            conn: ci,
                            dns: None,
                            gap: None,
                            expired: false,
                            candidates: 0,
                            first_use: false,
                        }
                    } else {
                        let prior = &entries[..upto];
                        let live: Vec<&IndexEntry> =
                            prior.iter().filter(|e| e.expires > conn.ts).collect();
                        let (chosen, expired) = if live.is_empty() {
                            (prior.last().unwrap(), true)
                        } else {
                            match policy {
                                PairingPolicy::MostRecent => (*live.last().unwrap(), false),
                                PairingPolicy::RandomNonExpired => {
                                    (live[rng.random_range(0..live.len())], false)
                                }
                            }
                        };
                        PairedConn {
                            conn: ci,
                            dns: Some(chosen.dns_idx),
                            gap: Some(conn.ts.since(chosen.completed)),
                            expired,
                            candidates: live.len(),
                            first_use: false, // filled below
                        }
                    }
                }
            };
            pairs.push(pair);
        }

        // First-use determination: the earliest-starting connection paired
        // with each lookup (conn log is ts-sorted, so first pairing wins).
        for pair in &pairs {
            if let Some(di) = pair.dns {
                dns_used[di] = true;
                let ts = conns[pair.conn].ts;
                first_use_ts.entry(di).or_insert(ts);
            }
        }
        // Ties on timestamp: exactly one connection (the earliest in log
        // order) is the first use. Single deterministic pass.
        let mut claimed: HashMap<usize, ()> = HashMap::new();
        for pair in &mut pairs {
            if let Some(di) = pair.dns {
                if first_use_ts[&di] == conns[pair.conn].ts && !claimed.contains_key(&di) {
                    claimed.insert(di, ());
                    pair.first_use = true;
                } else {
                    pair.first_use = false;
                }
            }
        }

        Pairing { pairs, app_conn_indices, dns_used }
    }

    /// Number of application connections analysed.
    pub fn app_conn_count(&self) -> usize {
        self.pairs.len()
    }

    /// Pairing outcomes as an obs snapshot: `pair.hit` (non-expired
    /// pairing), `pair.fallback` (expired-record pairing), `pair.miss`
    /// (no candidate lookup), `pair.first_use`, `pair.app_conns`, and a
    /// `pair.gap_ms` histogram over connection-start − lookup-completion
    /// gaps. `hit + fallback + miss == app_conns` by construction.
    pub fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        let mut hit = 0u64;
        let mut fallback = 0u64;
        let mut miss = 0u64;
        let mut first_use = 0u64;
        for p in &self.pairs {
            match (p.dns, p.expired) {
                (Some(_), false) => hit += 1,
                (Some(_), true) => fallback += 1,
                (None, _) => miss += 1,
            }
            first_use += u64::from(p.first_use);
            if let Some(gap) = p.gap {
                m.observe_with("pair.gap_ms", xkit::obs::HistSpec::time_ms(), gap.as_millis_f64());
            }
        }
        m.add("pair.hit", hit);
        m.add("pair.fallback", fallback);
        m.add("pair.miss", miss);
        m.add("pair.first_use", first_use);
        m.add("pair.app_conns", self.pairs.len() as u64);
        m
    }

    /// Fraction of *paired* connections with exactly one non-expired
    /// candidate (the paper reports 82 %).
    pub fn single_candidate_share(&self) -> f64 {
        let paired_live: Vec<&PairedConn> = self
            .pairs
            .iter()
            .filter(|p| p.dns.is_some() && !p.expired)
            .collect();
        if paired_live.is_empty() {
            return 0.0;
        }
        let single = paired_live.iter().filter(|p| p.candidates == 1).count();
        single as f64 / paired_live.len() as f64
    }

    /// Count and share of answered-with-addresses lookups never used by
    /// any connection (the paper's 37.8 % unused lookups).
    pub fn unused_lookups(&self, dns: &[DnsTransaction]) -> (usize, f64) {
        let eligible: Vec<usize> = dns
            .iter()
            .enumerate()
            .filter(|(_, t)| t.has_addrs() && t.rtt.is_some())
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return (0, 0.0);
        }
        let unused = eligible.iter().filter(|i| !self.dns_used[**i]).count();
        (unused, unused as f64 / eligible.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeek_lite::{Answer, ConnState, FiveTuple, Proto};

    const HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const OTHER_HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const SERVER: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);

    fn txn(ts_ms: u64, client: Ipv4Addr, addr: Ipv4Addr, ttl: u32) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client,
            resolver: RESOLVER,
            trans_id: 1,
            query: "www.example.com".into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(10)),
            answers: vec![Answer::addr(addr, ttl)],
        }
    }

    fn conn(ts_ms: u64, client: Ipv4Addr, dst: Ipv4Addr, port: u16) -> ConnRecord {
        ConnRecord {
            uid: ts_ms,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: client,
                orig_port: 50_000,
                resp_addr: dst,
                resp_port: port,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(500),
            orig_bytes: 100,
            resp_bytes: 1_000,
            orig_pkts: 4,
            resp_pkts: 4,
            state: ConnState::SF,
            history: String::new(),
            service: zeek_lite_service(port),
        }
    }

    fn zeek_lite_service(port: u16) -> Option<&'static str> {
        match port {
            53 => Some("dns"),
            443 => Some("ssl"),
            _ => None,
        }
    }

    #[test]
    fn pairs_with_most_recent_non_expired() {
        // Two lookups for the same address; conn starts after both.
        let dns = vec![
            txn(0, HOUSE, SERVER, 300),
            txn(5_000, HOUSE, SERVER, 300),
        ];
        let conns = vec![conn(6_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs.len(), 1);
        let pair = &p.pairs[0];
        assert_eq!(pair.dns, Some(1));
        assert!(!pair.expired);
        assert_eq!(pair.candidates, 2);
        // Gap = 6000 − (5000 + 10 rtt).
        assert_eq!(pair.gap, Some(Duration::from_millis(990)));
    }

    #[test]
    fn expired_fallback_uses_most_recent() {
        let dns = vec![txn(0, HOUSE, SERVER, 1), txn(2_000, HOUSE, SERVER, 1)];
        // Conn starts long after both TTLs (1 s) expired.
        let conns = vec![conn(60_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let pair = &p.pairs[0];
        assert_eq!(pair.dns, Some(1));
        assert!(pair.expired);
        assert_eq!(pair.candidates, 0);
    }

    #[test]
    fn unpaired_when_no_lookup_contains_address() {
        let dns = vec![txn(0, HOUSE, SERVER, 300)];
        let conns = vec![conn(1_000, HOUSE, Ipv4Addr::new(9, 9, 9, 9), 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].dns, None);
    }

    #[test]
    fn other_clients_lookups_do_not_pair() {
        let dns = vec![txn(0, OTHER_HOUSE, SERVER, 300)];
        let conns = vec![conn(1_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].dns, None);
    }

    #[test]
    fn lookup_completing_after_conn_start_is_ignored() {
        // Lookup at t=1000 ms completes at 1010; conn starts at 1005.
        let dns = vec![txn(1_000, HOUSE, SERVER, 300)];
        let conns = vec![conn(1_005, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].dns, None);
    }

    #[test]
    fn dns_conns_excluded_from_app_set() {
        let dns = vec![txn(0, HOUSE, SERVER, 300)];
        let conns = vec![conn(1_000, HOUSE, RESOLVER, 53), conn(2_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.app_conn_count(), 1);
        assert_eq!(p.app_conn_indices, vec![1]);
    }

    #[test]
    fn first_use_marks_exactly_one_conn_per_lookup() {
        let dns = vec![txn(0, HOUSE, SERVER, 300)];
        let conns = vec![
            conn(1_000, HOUSE, SERVER, 443),
            conn(2_000, HOUSE, SERVER, 443),
            conn(3_000, HOUSE, SERVER, 443),
        ];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let firsts: Vec<bool> = p.pairs.iter().map(|x| x.first_use).collect();
        assert_eq!(firsts, vec![true, false, false]);
    }

    #[test]
    fn unused_lookup_accounting() {
        let dns = vec![txn(0, HOUSE, SERVER, 300), txn(100, HOUSE, Ipv4Addr::new(9, 9, 9, 9), 300)];
        let conns = vec![conn(1_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let (unused, share) = p.unused_lookups(&dns);
        assert_eq!(unused, 1);
        assert!((share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_candidate_share_counts_ambiguity() {
        let dns = vec![
            txn(0, HOUSE, SERVER, 3_000),
            txn(1_000, HOUSE, SERVER, 3_000),
        ];
        let conns = vec![conn(5_000, HOUSE, SERVER, 443)];
        let p = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs[0].candidates, 2);
        assert_eq!(p.single_candidate_share(), 0.0);
    }

    #[test]
    fn random_policy_picks_live_candidates() {
        let dns = vec![
            txn(0, HOUSE, SERVER, 3_000),
            txn(1_000, HOUSE, SERVER, 3_000),
            txn(2_000, HOUSE, SERVER, 3_000),
        ];
        let conns: Vec<ConnRecord> = (0..50).map(|i| conn(5_000 + i, HOUSE, SERVER, 443)).collect();
        let p = Pairing::build(&conns, &dns, PairingPolicy::RandomNonExpired);
        let mut seen = std::collections::HashSet::new();
        for pair in &p.pairs {
            assert!(!pair.expired);
            seen.insert(pair.dns.unwrap());
        }
        assert!(seen.len() > 1, "random policy should spread: {seen:?}");
    }
}
