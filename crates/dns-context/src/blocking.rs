//! The blocking heuristic (paper §4, Figure 1).
//!
//! The interval between a lookup's completion and the start of the
//! connection using it separates two behaviours: connections *blocked*
//! waiting for the answer (small gaps, knee around 20 ms) and connections
//! using information already on hand (gaps of seconds to hours). The paper
//! validates the split with first-use rates — 91 % of sub-20 ms-gap
//! connections are the first to use their lookup, versus 21 % beyond — and
//! then adopts a conservative 100 ms threshold.

use crate::pairing::Pairing;
use crate::stats::Ecdf;
use zeek_lite::Duration;

/// Figure 1's ingredients.
#[derive(Debug)]
pub struct GapAnalysis {
    /// Gap distribution in milliseconds, over paired connections.
    pub gaps_ms: Ecdf,
    /// Of connections with gap < the knee: fraction that are first use.
    pub first_use_within_knee: f64,
    /// Of connections with gap ≥ the knee: fraction that are first use.
    pub first_use_beyond_knee: f64,
    /// The knee used for the two rates above.
    pub knee: Duration,
}

impl GapAnalysis {
    /// Compute the gap distribution and first-use split at `knee`.
    pub fn compute(pairing: &Pairing, knee: Duration) -> GapAnalysis {
        let mut gaps = Vec::new();
        let mut within = (0usize, 0usize); // (first_use, total)
        let mut beyond = (0usize, 0usize);
        for p in &pairing.pairs {
            let Some(gap) = p.gap else { continue };
            gaps.push(gap.as_millis_f64());
            let bucket = if gap < knee { &mut within } else { &mut beyond };
            bucket.1 += 1;
            if p.first_use {
                bucket.0 += 1;
            }
        }
        GapAnalysis {
            gaps_ms: Ecdf::new(gaps),
            first_use_within_knee: ratio(within),
            first_use_beyond_knee: ratio(beyond),
            knee,
        }
    }

    /// Fraction of paired connections with gap at or below `d` — the CDF
    /// Figure 1 plots.
    pub fn fraction_within(&self, d: Duration) -> f64 {
        self.gaps_ms.fraction_at_or_below(d.as_millis_f64())
    }

    /// Estimate the knee of the gap distribution — where the CDF's slope
    /// (in log-time) collapses after the blocked mode (the paper reads
    /// ≈20 ms off its Figure 1 by eye).
    ///
    /// Method: walk candidate thresholds on a logarithmic grid between
    /// 1 ms and 100 s; the knee is the left edge of the first grid cell —
    /// after the distribution's steepest cell — whose per-cell CDF mass
    /// falls below `flat_fraction` of the steepest cell's mass. Returns
    /// `None` when the distribution is empty or never flattens (no
    /// plateau, hence no meaningful blocking threshold).
    pub fn estimate_knee(&self, flat_fraction: f64) -> Option<Duration> {
        if self.gaps_ms.is_empty() {
            return None;
        }
        // 8 cells per decade over [1 ms, 1e5 ms].
        const CELLS_PER_DECADE: usize = 8;
        let grid: Vec<f64> = (0..=(5 * CELLS_PER_DECADE))
            .map(|i| 10f64.powf(i as f64 / CELLS_PER_DECADE as f64))
            .collect();
        let mass: Vec<f64> = grid
            .windows(2)
            .map(|w| {
                self.gaps_ms.fraction_at_or_below(w[1]) - self.gaps_ms.fraction_at_or_below(w[0])
            })
            .collect();
        let (steepest, peak) = mass
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, m)| (i, *m))?;
        if peak <= 0.0 {
            return None;
        }
        for (i, m) in mass.iter().enumerate().skip(steepest + 1) {
            if *m < peak * flat_fraction {
                return Some(Duration::from_secs_f64(grid[i] / 1e3));
            }
        }
        None
    }
}

fn ratio((num, den): (usize, usize)) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairedConn;

    fn pair(gap_ms: Option<u64>, first_use: bool) -> PairedConn {
        PairedConn {
            conn: 0,
            dns: gap_ms.map(|_| 0),
            gap: gap_ms.map(Duration::from_millis),
            expired: false,
            candidates: 1,
            first_use,
        }
    }

    fn pairing_of(pairs: Vec<PairedConn>) -> Pairing {
        Pairing {
            app_conn_indices: (0..pairs.len()).collect(),
            dns_used: vec![true],
            pairs,
        }
    }

    #[test]
    fn splits_first_use_rates_at_knee() {
        let p = pairing_of(vec![
            pair(Some(5), true),
            pair(Some(8), true),
            pair(Some(12), false),
            pair(Some(500), false),
            pair(Some(900), true),
            pair(None, false),
        ]);
        let g = GapAnalysis::compute(&p, Duration::from_millis(20));
        assert_eq!(g.gaps_ms.len(), 5);
        assert!((g.first_use_within_knee - 2.0 / 3.0).abs() < 1e-12);
        assert!((g.first_use_beyond_knee - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_threshold() {
        let p = pairing_of(vec![pair(Some(5), true), pair(Some(50), false), pair(Some(5_000), false)]);
        let g = GapAnalysis::compute(&p, Duration::from_millis(20));
        assert!((g.fraction_within(Duration::from_millis(100)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pairing() {
        let g = GapAnalysis::compute(&pairing_of(vec![]), Duration::from_millis(20));
        assert!(g.gaps_ms.is_empty());
        assert_eq!(g.first_use_within_knee, 0.0);
        assert_eq!(g.estimate_knee(0.1), None);
    }

    #[test]
    fn knee_found_in_bimodal_distribution() {
        // Blocked mode: tight cluster 1–8 ms. Cache-reuse mode: seconds to
        // hours. The knee should land between them.
        let mut pairs = Vec::new();
        for i in 0..600u64 {
            pairs.push(pair(Some(1 + i % 8), true));
        }
        for i in 0..400u64 {
            pairs.push(pair(Some(2_000 + i * 40_000), false));
        }
        let g = GapAnalysis::compute(&pairing_of(pairs), Duration::from_millis(20));
        let knee = g.estimate_knee(0.10).expect("knee exists");
        let ms = knee.as_millis_f64();
        assert!(
            (8.0..=2_000.0).contains(&ms),
            "knee {ms} ms should separate the modes"
        );
    }

    #[test]
    fn unimodal_distribution_flattens_right_after_its_mode() {
        // All gaps in one tight cluster: the knee lands just past it.
        let pairs: Vec<PairedConn> = (0..200).map(|i| pair(Some(10 + i % 3), true)).collect();
        let g = GapAnalysis::compute(&pairing_of(pairs), Duration::from_millis(20));
        let knee = g.estimate_knee(0.10).expect("flattens after the cluster");
        assert!(knee.as_millis_f64() > 10.0);
        assert!(knee.as_millis_f64() < 200.0);
    }
}
