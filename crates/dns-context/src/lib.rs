//! The paper's analysis pipeline: DNS *in the context of* the application
//! transactions that use it.
//!
//! Implements the methodology of *Putting DNS in Context* (Allman,
//! IMC 2020) over [`zeek_lite::Logs`] — regardless of whether those logs
//! came from a real capture, from the packet pipeline, or from the
//! simulator's direct backend:
//!
//! 1. **Pairing** ([`pairing`]) — DN-Hunter: each application connection is
//!    matched with the most recent non-expired DNS lookup by the same
//!    client whose answers contain the connection's destination address
//!    (falling back to the most recent expired one).
//! 2. **Blocking** ([`blocking`]) — connections starting within 100 ms of
//!    their lookup's completion are "blocked" on DNS; the gap distribution
//!    (Figure 1) justifies the threshold.
//! 3. **Classification** ([`classify`]) — Table 2's five classes:
//!    `N` (no DNS), `LC` (local cache), `P` (prefetched),
//!    `SC` (shared-resolver cache), `R` (authoritative resolution), with
//!    the per-resolver duration threshold separating SC from R.
//! 4. **Performance** ([`perf`]) — Figure 2 and §6: absolute lookup delays
//!    and DNS' relative contribution to transaction time, plus the 2×2
//!    significance decomposition.
//! 5. **Resolver comparison** ([`resolver`]) — Table 1, §7 and Figure 3:
//!    per-platform usage, cache hit rates, R-lookup delays, and
//!    application throughput (including the connectivitycheck artifact).
//!
//! [`Analysis`] runs the whole pipeline once and serves every table and
//! figure from the shared result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod classify;
pub mod house;
pub mod pairing;
pub mod perf;
pub mod report;
pub mod resolver;
pub mod stats;
pub mod stream;
pub mod timeseries;

mod analysis;

pub use analysis::{Analysis, AnalysisConfig, AnalysisScratch, Coverage};
pub use classify::{ClassCounts, ConnClass};
pub use pairing::{PairedConn, Pairing, PairingPolicy, PairingScratch};
pub use stats::Ecdf;
pub use stream::{EpochOutput, StreamEngine, StreamResult};
