//! DNS performance implications (paper §6, Figure 2).
//!
//! For connections that block on DNS (`SC` ∪ `R`): the absolute lookup
//! delay, the lookup's percentage contribution to the total transaction
//! time, and the 2×2 significance decomposition (absolute > 20 ms ×
//! relative > 1 %).

use crate::classify::ConnClass;
use crate::pairing::Pairing;
use crate::stats::Ecdf;
use zeek_lite::{ConnColumns, DnsColumns};

/// One blocked connection's performance figures.
#[derive(Debug, Clone, Copy)]
pub struct BlockedPerf {
    /// Lookup duration, milliseconds (the `D` of §6).
    pub dns_ms: f64,
    /// Application transfer duration, milliseconds (the `A` of §6).
    pub app_ms: f64,
    /// Whether the connection was `SC` (vs `R`).
    pub shared_cache: bool,
}

impl BlockedPerf {
    /// DNS' percentage contribution to the total time, `100·D/(D+A)`.
    pub fn contribution_pct(&self) -> f64 {
        let total = self.dns_ms + self.app_ms;
        if total <= 0.0 {
            // A zero-length transaction is all DNS.
            return 100.0;
        }
        100.0 * self.dns_ms / total
    }
}

/// §6's distributions and headline numbers.
#[derive(Debug)]
pub struct PerfAnalysis {
    /// Per-blocked-connection figures.
    pub blocked: Vec<BlockedPerf>,
    /// Lookup delays (ms) over SC ∪ R (Figure 2 top).
    pub delay_ms: Ecdf,
    /// Contribution (%) over SC ∪ R (Figure 2 bottom, black line).
    pub contribution_pct: Ecdf,
    /// Contribution (%) for SC only (blue line).
    pub contribution_sc_pct: Ecdf,
    /// Contribution (%) for R only (red line).
    pub contribution_r_pct: Ecdf,
}

/// The §6 significance quadrants (shares of SC ∪ R, percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Significance {
    /// ≤ abs and ≤ rel: insignificant by both criteria (paper: 64.0 %).
    pub neither_pct: f64,
    /// > rel but ≤ abs (paper: 11.5 %).
    pub rel_only_pct: f64,
    /// > abs but ≤ rel (paper: 15.9 %).
    pub abs_only_pct: f64,
    /// > abs and > rel: significant (paper: 8.6 %).
    pub both_pct: f64,
    /// `both` as a share of ALL connections (paper: 3.6 %).
    pub both_share_of_all_pct: f64,
}

impl PerfAnalysis {
    /// Build from the classified pairing. Scans the dns rtt column and
    /// the conn duration column.
    pub fn compute(
        conns: &ConnColumns,
        dns: &DnsColumns,
        pairing: &Pairing,
        classes: &[ConnClass],
    ) -> PerfAnalysis {
        let mut blocked = Vec::new();
        for (pair, class) in pairing.pairs.iter().zip(classes) {
            let shared_cache = match class {
                ConnClass::SharedCache => true,
                ConnClass::Resolution => false,
                _ => continue,
            };
            let di = pair.dns.expect("blocked conns are paired");
            let dns_ms = dns.rtt[di].expect("paired lookups answered").as_millis_f64();
            let app_ms = conns.duration[pair.conn].as_millis_f64();
            blocked.push(BlockedPerf { dns_ms, app_ms, shared_cache });
        }
        let delay_ms = Ecdf::new(blocked.iter().map(|b| b.dns_ms).collect());
        let contribution_pct = Ecdf::new(blocked.iter().map(|b| b.contribution_pct()).collect());
        let contribution_sc_pct = Ecdf::new(
            blocked.iter().filter(|b| b.shared_cache).map(|b| b.contribution_pct()).collect(),
        );
        let contribution_r_pct = Ecdf::new(
            blocked.iter().filter(|b| !b.shared_cache).map(|b| b.contribution_pct()).collect(),
        );
        PerfAnalysis { blocked, delay_ms, contribution_pct, contribution_sc_pct, contribution_r_pct }
    }

    /// The quadrant decomposition with the given thresholds (paper: 20 ms
    /// absolute, 1 % relative) and the total connection count for the
    /// all-connections share.
    pub fn significance(&self, abs_ms: f64, rel_pct: f64, total_conns: usize) -> Significance {
        let n = self.blocked.len();
        if n == 0 {
            return Significance {
                neither_pct: 0.0,
                rel_only_pct: 0.0,
                abs_only_pct: 0.0,
                both_pct: 0.0,
                both_share_of_all_pct: 0.0,
            };
        }
        let mut q = [0usize; 4];
        for b in &self.blocked {
            let abs = b.dns_ms > abs_ms;
            let rel = b.contribution_pct() > rel_pct;
            let idx = (abs as usize) << 1 | rel as usize;
            q[idx] += 1;
        }
        let p = |c: usize| 100.0 * c as f64 / n as f64;
        Significance {
            neither_pct: p(q[0b00]),
            rel_only_pct: p(q[0b01]),
            abs_only_pct: p(q[0b10]),
            both_pct: p(q[0b11]),
            both_share_of_all_pct: if total_conns == 0 {
                0.0
            } else {
                100.0 * q[0b11] as f64 / total_conns as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_with(blocked: Vec<BlockedPerf>) -> PerfAnalysis {
        let delay_ms = Ecdf::new(blocked.iter().map(|b| b.dns_ms).collect());
        let contribution_pct = Ecdf::new(blocked.iter().map(|b| b.contribution_pct()).collect());
        let contribution_sc_pct = Ecdf::new(
            blocked.iter().filter(|b| b.shared_cache).map(|b| b.contribution_pct()).collect(),
        );
        let contribution_r_pct = Ecdf::new(
            blocked.iter().filter(|b| !b.shared_cache).map(|b| b.contribution_pct()).collect(),
        );
        PerfAnalysis { blocked, delay_ms, contribution_pct, contribution_sc_pct, contribution_r_pct }
    }

    #[test]
    fn contribution_formula() {
        let b = BlockedPerf { dns_ms: 10.0, app_ms: 90.0, shared_cache: true };
        assert!((b.contribution_pct() - 10.0).abs() < 1e-12);
        let zero = BlockedPerf { dns_ms: 5.0, app_ms: 0.0, shared_cache: true };
        assert_eq!(zero.contribution_pct(), 100.0);
    }

    #[test]
    fn quadrants_partition() {
        let p = perf_with(vec![
            BlockedPerf { dns_ms: 5.0, app_ms: 10_000.0, shared_cache: true }, // neither
            BlockedPerf { dns_ms: 5.0, app_ms: 50.0, shared_cache: true },     // rel only
            BlockedPerf { dns_ms: 50.0, app_ms: 100_000.0, shared_cache: false }, // abs only
            BlockedPerf { dns_ms: 50.0, app_ms: 50.0, shared_cache: false },   // both
        ]);
        let s = p.significance(20.0, 1.0, 8);
        assert_eq!(s.neither_pct, 25.0);
        assert_eq!(s.rel_only_pct, 25.0);
        assert_eq!(s.abs_only_pct, 25.0);
        assert_eq!(s.both_pct, 25.0);
        assert_eq!(s.both_share_of_all_pct, 12.5);
        let total = s.neither_pct + s.rel_only_pct + s.abs_only_pct + s.both_pct;
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_blocked_set() {
        let p = perf_with(vec![]);
        let s = p.significance(20.0, 1.0, 0);
        assert_eq!(s.both_pct, 0.0);
        assert!(p.delay_ms.is_empty());
    }
}
