//! The one-stop analysis facade.

use crate::blocking::GapAnalysis;
use crate::classify::{
    classify_parallel, count_classes, no_dns_breakdown, resolver_thresholds, ttl_stats,
    ClassCounts, ConnClass, NoDnsBreakdown, ThresholdRule, TtlStats,
};
use crate::pairing::{Pairing, PairingPolicy, PairingScratch};
use crate::perf::{PerfAnalysis, Significance};
use crate::resolver::{platform_reports, PlatformMap, PlatformReport};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use zeek_lite::{ConnColumns, DnsColumns, Duration, Logs};

/// Analysis knobs, defaulting to the paper's choices.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Pairing policy (paper main result: most recent).
    pub policy: PairingPolicy,
    /// Blocking threshold (paper: 100 ms, conservative vs the 20 ms knee).
    pub block_threshold: Duration,
    /// The knee used for Figure 1's first-use split (paper: 20 ms).
    pub knee: Duration,
    /// SC/R resolver threshold derivation.
    pub threshold_rule: ThresholdRule,
    /// §6 absolute significance threshold, ms (paper: 20).
    pub significance_abs_ms: f64,
    /// §6 relative significance threshold, percent (paper: 1).
    pub significance_rel_pct: f64,
    /// Resolver-address → platform mapping.
    pub platform_map: PlatformMap,
    /// Worker threads for the independent analysis stages (0 = one per
    /// core). Results are identical for every value.
    pub threads: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            policy: PairingPolicy::MostRecent,
            block_threshold: Duration::from_millis(100),
            knee: Duration::from_millis(20),
            threshold_rule: ThresholdRule::default(),
            significance_abs_ms: 20.0,
            significance_rel_pct: 1.0,
            platform_map: PlatformMap::default(),
            threads: 0,
        }
    }
}

/// How complete the analysed input actually was.
///
/// The pipeline never refuses partial logs — damaged frames are rejected
/// upstream and counted in [`zeek_lite::DegradationStats`] — so every
/// result should be read next to this report: upstream acceptance ratios
/// plus the fraction of application connections the pairing could still
/// attribute to a lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Fraction of captured frames that parsed (1.0 for direct-log runs).
    pub frame_acceptance: f64,
    /// Fraction of port-53 payloads that decoded (1.0 for direct-log runs).
    pub dns_acceptance: f64,
    /// Application connections analysed.
    pub app_conns: usize,
    /// Of those, how many paired with a DNS lookup.
    pub paired: usize,
}

impl Coverage {
    /// Fraction of application connections that paired with a lookup,
    /// in `[0, 1]` (1.0 when there were no connections at all).
    pub fn pair_coverage(&self) -> f64 {
        if self.app_conns == 0 {
            1.0
        } else {
            self.paired as f64 / self.app_conns as f64
        }
    }

    /// Express the report as an obs snapshot (`cover.*`): acceptance
    /// ratios as gauges, connection counts as counters. `from_metrics`
    /// inverts it exactly, so this struct is a thin view over the one
    /// snapshot/merge path.
    pub fn to_metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        m.gauge_max("cover.frame_acceptance", self.frame_acceptance);
        m.gauge_max("cover.dns_acceptance", self.dns_acceptance);
        m.add("cover.app_conns", self.app_conns as u64);
        m.add("cover.paired", self.paired as u64);
        m
    }

    /// Rebuild the view from an obs snapshot (absent gauges read as
    /// fully-accepted, matching the direct-log default).
    pub fn from_metrics(m: &xkit::obs::Metrics) -> Coverage {
        Coverage {
            frame_acceptance: m.gauge("cover.frame_acceptance").unwrap_or(1.0),
            dns_acceptance: m.gauge("cover.dns_acceptance").unwrap_or(1.0),
            app_conns: m.counter("cover.app_conns") as usize,
            paired: m.counter("cover.paired") as usize,
        }
    }
}

impl std::fmt::Display for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frames {:.2}% · dns {:.2}% · pairs {}/{} ({:.2}%)",
            self.frame_acceptance * 100.0,
            self.dns_acceptance * 100.0,
            self.paired,
            self.app_conns,
            self.pair_coverage() * 100.0
        )
    }
}

/// Reusable buffers for [`Analysis::run_with`]: the pairing arena plus
/// anything future stages want to retain across runs. A default scratch
/// starts empty; repeated analyses (windowed sweeps, multi-seed
/// benchmarks) that thread the same scratch through avoid rebuilding
/// the pairing allocations every run.
#[derive(Default)]
pub struct AnalysisScratch {
    /// Pairing arena, span map, and first-use tables.
    pub pairing: PairingScratch,
}

/// The full pipeline, run once over a set of logs.
pub struct Analysis<'a> {
    logs: &'a Logs,
    cfg: AnalysisConfig,
    /// Columnar projection of the connection log (index-aligned).
    conn_cols: ConnColumns,
    /// Columnar projection of the DNS log scalars (index-aligned).
    dns_cols: DnsColumns,
    /// Pairing results (one entry per application connection).
    pub pairing: Pairing,
    /// Per-connection class, aligned with `pairing.pairs`.
    pub classes: Vec<ConnClass>,
    /// Derived per-resolver SC/R thresholds.
    pub thresholds: HashMap<Ipv4Addr, Duration>,
}

impl<'a> Analysis<'a> {
    /// Run pairing, threshold derivation, and classification.
    ///
    /// The pairing index and the per-resolver thresholds read disjoint
    /// inputs, so they are built concurrently; classification then fans
    /// out over contiguous chunks of the pairing. Every stage is a pure
    /// function of the logs, so the thread count never changes a result.
    pub fn run(logs: &'a Logs, cfg: AnalysisConfig) -> Analysis<'a> {
        let mut scratch = AnalysisScratch::default();
        Self::run_with(&mut scratch, logs, cfg)
    }

    /// [`Analysis::run`] with caller-provided scratch, so repeated runs
    /// reuse the pairing allocations.
    pub fn run_with(
        scratch: &mut AnalysisScratch,
        logs: &'a Logs,
        cfg: AnalysisConfig,
    ) -> Analysis<'a> {
        // Columnar projections are built once up front; every downstream
        // stage (thresholds, classification, §5.2, §6) scans these
        // contiguous columns instead of striding through the rows.
        let conn_cols = logs.conn_columns();
        let dns_cols = logs.dns_columns();
        let pairing_scratch = &mut scratch.pairing;
        let (pairing, thresholds) = xkit::par::join(
            cfg.threads,
            || Pairing::build_with(pairing_scratch, &logs.conns, &logs.dns, cfg.policy),
            || resolver_thresholds(&dns_cols, cfg.threshold_rule),
        );
        let floor = Duration::from_secs_f64(cfg.threshold_rule.floor_ms / 1e3);
        let classes = classify_parallel(
            cfg.threads,
            &dns_cols,
            &pairing,
            cfg.block_threshold,
            &thresholds,
            floor,
        );
        Analysis { logs, cfg, conn_cols, dns_cols, pairing, classes, thresholds }
    }

    /// The logs under analysis.
    pub fn logs(&self) -> &Logs {
        self.logs
    }

    /// The connection-log columnar projection built for this run.
    pub fn conn_columns(&self) -> &ConnColumns {
        &self.conn_cols
    }

    /// The DNS-log columnar projection built for this run.
    pub fn dns_columns(&self) -> &DnsColumns {
        &self.dns_cols
    }

    /// The configuration used.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// How much of the capture survived into this analysis.
    pub fn coverage(&self) -> Coverage {
        Coverage {
            frame_acceptance: self.logs.degradation.frame_acceptance(),
            dns_acceptance: self.logs.degradation.dns_acceptance(),
            app_conns: self.pairing.app_conn_count(),
            paired: self.pairing.pairs.iter().filter(|p| p.dns.is_some()).count(),
        }
    }

    /// Table 2.
    pub fn class_counts(&self) -> ClassCounts {
        count_classes(&self.classes)
    }

    /// Figure 1.
    pub fn gap_analysis(&self) -> GapAnalysis {
        GapAnalysis::compute(&self.pairing, self.cfg.knee)
    }

    /// §5.1.
    pub fn no_dns_breakdown(&self) -> NoDnsBreakdown {
        no_dns_breakdown(&self.logs.conns, &self.pairing, &self.classes)
    }

    /// §5.2.
    pub fn ttl_stats(&self) -> TtlStats {
        ttl_stats(&self.conn_cols, &self.dns_cols, &self.pairing, &self.classes)
    }

    /// §6 / Figure 2.
    pub fn perf(&self) -> PerfAnalysis {
        PerfAnalysis::compute(&self.conn_cols, &self.dns_cols, &self.pairing, &self.classes)
    }

    /// §6's quadrants at the configured thresholds.
    pub fn significance(&self) -> Significance {
        self.perf().significance(
            self.cfg.significance_abs_ms,
            self.cfg.significance_rel_pct,
            self.pairing.app_conn_count(),
        )
    }

    /// Class mix over fixed-width time buckets (operator view).
    pub fn timeseries(&self, width: Duration) -> Vec<crate::timeseries::Bucket> {
        crate::timeseries::bucketize(&self.logs.conns, &self.pairing, &self.classes, width)
    }

    /// Diurnal (hour-of-day) classification profile.
    pub fn diurnal_profile(&self) -> [(u8, ClassCounts); 24] {
        crate::timeseries::hour_of_day_profile(&self.logs.conns, &self.pairing, &self.classes)
    }

    /// Per-house breakdown (operator view; not a paper artifact).
    pub fn house_reports(&self) -> Vec<crate::house::HouseReport> {
        crate::house::house_reports(&self.logs.conns, &self.logs.dns, &self.pairing, &self.classes)
    }

    /// Everything the analysis can report as one obs snapshot: the
    /// `pair.*` outcomes, `class.*` counts, per-resolver `threshold.*`
    /// gauges, `perf.*` blocked-connection figures, and the `cover.*`
    /// view. Pure function of the logs, so identical for any thread
    /// count.
    pub fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = self.pairing.metrics();
        m.merge(&self.coverage().to_metrics());
        let counts = self.class_counts();
        m.add("class.no_dns", counts.no_dns as u64);
        m.add("class.local_cache", counts.local_cache as u64);
        m.add("class.prefetched", counts.prefetched as u64);
        m.add("class.shared_cache", counts.shared_cache as u64);
        m.add("class.resolution", counts.resolution as u64);
        m.add("threshold.resolvers", self.thresholds.len() as u64);
        // lint: allow(no-map-iteration): one metrics key per map key; Metrics stores sorted
        for (addr, thr) in &self.thresholds {
            m.gauge_max(&format!("threshold.{addr}.ms"), thr.as_millis_f64());
        }
        let perf = self.perf();
        m.add("perf.blocked_conns", perf.blocked.len() as u64);
        for b in &perf.blocked {
            m.observe_with("perf.blocked_dns_ms", xkit::obs::HistSpec::time_ms(), b.dns_ms);
        }
        m
    }

    /// Table 1 / §7 / Figure 3.
    pub fn platform_reports(&self) -> Vec<PlatformReport> {
        platform_reports(
            &self.logs.conns,
            &self.logs.dns,
            &self.pairing,
            &self.classes,
            &self.cfg.platform_map,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeek_lite::{Answer, ConnRecord, ConnState, DnsTransaction, FiveTuple, Proto, Timestamp};

    fn small_logs() -> Logs {
        let house = std::net::Ipv4Addr::new(10, 77, 0, 1);
        let resolver = std::net::Ipv4Addr::new(198, 51, 100, 53);
        let server = std::net::Ipv4Addr::new(104, 16, 0, 1);
        let dns = vec![DnsTransaction {
            ts: Timestamp::from_millis(1_000),
            client: house,
            resolver,
            trans_id: 1,
            query: "www.example.com".into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(4)),
            answers: vec![Answer::addr(server, 300)],
        }];
        let mk_conn = |ts_ms: u64, uid: u64| ConnRecord {
            uid,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: house,
                orig_port: 50_000 + uid as u16,
                resp_addr: server,
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(900),
            orig_bytes: 500,
            resp_bytes: 60_000,
            orig_pkts: 6,
            resp_pkts: 40,
            state: ConnState::SF,
            history: "ShAaFf".into(),
            service: Some("ssl"),
        };
        let mut logs = Logs {
            conns: vec![mk_conn(1_006, 0), mk_conn(30_000, 1)],
            dns,
            ..Default::default()
        };
        logs.sort();
        logs
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let logs = small_logs();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let a = Analysis::run(&logs, cfg);
        let counts = a.class_counts();
        assert_eq!(counts.total(), 2);
        // First conn blocks (gap 2 ms) on a fast lookup → SC;
        // second reuses it 29 s later → LC.
        assert_eq!(counts.shared_cache, 1);
        assert_eq!(counts.local_cache, 1);
        let gaps = a.gap_analysis();
        assert_eq!(gaps.gaps_ms.len(), 2);
        let perf = a.perf();
        assert_eq!(perf.blocked.len(), 1);
        let sig = a.significance();
        assert_eq!(sig.neither_pct, 100.0);
        let reports = a.platform_reports();
        let local = reports.iter().find(|r| r.name == "Local").unwrap();
        assert_eq!(local.conns_pct, 100.0);
        let cov = a.coverage();
        assert_eq!(cov.app_conns, 2);
        assert_eq!(cov.paired, 2);
        assert_eq!(cov.pair_coverage(), 1.0);
        // Direct-log runs saw no frames, so acceptance reads as complete.
        assert_eq!(cov.frame_acceptance, 1.0);
        assert_eq!(cov.dns_acceptance, 1.0);
    }

    #[test]
    fn metrics_snapshot_is_consistent_with_views() {
        let logs = small_logs();
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let a = Analysis::run(&logs, cfg);
        let m = a.metrics();
        // Pairing outcomes partition the application connections.
        let app = m.counter("pair.app_conns");
        assert_eq!(m.counter("pair.hit") + m.counter("pair.fallback") + m.counter("pair.miss"), app);
        assert_eq!(app, a.pairing.app_conn_count() as u64);
        // Per-class counts sum to the total.
        assert_eq!(m.sum_counters("class."), a.class_counts().total() as u64);
        // Coverage is a thin view over the same snapshot.
        assert_eq!(Coverage::from_metrics(&m), a.coverage());
        // Every derived resolver threshold appears as a gauge.
        assert_eq!(m.counter("threshold.resolvers"), a.thresholds.len() as u64);
        for (addr, thr) in &a.thresholds {
            let g = m.gauge(&format!("threshold.{addr}.ms")).unwrap();
            assert_eq!(g, thr.as_millis_f64());
        }
        assert_eq!(m.counter("perf.blocked_conns"), a.perf().blocked.len() as u64);
    }

    #[test]
    fn default_config_matches_paper_choices() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.block_threshold, Duration::from_millis(100));
        assert_eq!(cfg.knee, Duration::from_millis(20));
        assert_eq!(cfg.significance_abs_ms, 20.0);
        assert_eq!(cfg.significance_rel_pct, 1.0);
        assert_eq!(cfg.threshold_rule.floor_ms, 5.0);
    }
}
