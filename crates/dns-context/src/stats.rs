//! Small statistics toolkit: empirical CDFs, quantiles, summaries.

use std::fmt;

/// An empirical cumulative distribution over `f64` samples.
///
/// Construction sorts once; queries are O(log n). NaN samples are
/// filtered out at construction — NaN has no place in an order statistic
/// (it would poison the sort and make `sorted` non-monotone), so a NaN
/// simply does not become a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples, silently dropping any NaN values.
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    /// Returns `None` on an empty distribution. Out-of-range and NaN
    /// `q` clamp to the nearest valid probability.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Median, or `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x` (the CDF evaluated at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly above `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }

    /// `points` evenly-spaced (in probability) CDF points `(x, F(x))`,
    /// suitable for plotting or CSV export. Fewer points than requested
    /// come back when there are fewer samples.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = points.min(self.sorted.len());
        (1..=n)
            .map(|k| {
                let q = k as f64 / n as f64;
                let idx = ((q * self.sorted.len() as f64).ceil() as usize - 1).min(self.sorted.len() - 1);
                (self.sorted[idx], q)
            })
            .collect()
    }

    /// Read-only view of the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Five-number-plus summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl Summary {
    /// Summarise an ECDF; `None` when empty.
    pub fn of(e: &Ecdf) -> Option<Summary> {
        Some(Summary {
            count: e.len(),
            min: e.min()?,
            p25: e.quantile(0.25)?,
            median: e.median()?,
            p75: e.quantile(0.75)?,
            p90: e.quantile(0.90)?,
            p99: e.quantile(0.99)?,
            max: e.max()?,
            mean: e.mean()?,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} p25={:.3} med={:.3} p75={:.3} p90={:.3} p99={:.3} max={:.3} mean={:.3}",
            self.count, self.min, self.p25, self.median, self.p75, self.p90, self.p99, self.max, self.mean
        )
    }
}

/// Percentage with one decimal — the paper's reporting style.
pub fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(e.quantile(0.5), Some(5.0));
        assert_eq!(e.quantile(0.1), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(10.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.median(), Some(5.0));
    }

    #[test]
    fn fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(99.0), 1.0);
        assert!((e.fraction_above(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert!(e.curve(10).is_empty());
        assert!(Summary::of(&e).is_none());
    }

    #[test]
    fn unsorted_input_handled() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
        assert_eq!(e.samples(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn nan_filtered_at_construction() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, f64::NAN, 3.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.samples(), &[1.0, 3.0]);
        assert_eq!(e.median(), Some(1.0));
        // All-NaN input degenerates to the empty distribution.
        let empty = Ecdf::new(vec![f64::NAN]);
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn quantile_edges_on_tiny_distributions() {
        // Nearest-rank pins for q ∈ {0, 0.5, 1} on 1-, 2- and 3-element
        // sets: idx = ceil(q·n) − 1, clamped into range.
        let one = Ecdf::new(vec![7.0]);
        assert_eq!(one.quantile(0.0), Some(7.0));
        assert_eq!(one.quantile(0.5), Some(7.0));
        assert_eq!(one.quantile(1.0), Some(7.0));

        let two = Ecdf::new(vec![1.0, 2.0]);
        assert_eq!(two.quantile(0.0), Some(1.0));
        assert_eq!(two.quantile(0.5), Some(1.0));
        assert_eq!(two.quantile(1.0), Some(2.0));

        let three = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(three.quantile(0.0), Some(1.0));
        assert_eq!(three.quantile(0.5), Some(2.0));
        assert_eq!(three.quantile(1.0), Some(3.0));

        // Out-of-range q clamps rather than panicking or indexing wild.
        assert_eq!(three.quantile(-1.0), Some(1.0));
        assert_eq!(three.quantile(2.0), Some(3.0));
        // A NaN probability clamps to 0 (f64::clamp would propagate it).
        assert_eq!(three.quantile(f64::NAN), Some(1.0));
    }

    #[test]
    fn curve_is_monotonic() {
        let e = Ecdf::new((0..1000).map(|i| ((i * 37) % 911) as f64).collect());
        let c = e.curve(50);
        assert_eq!(c.len(), 50);
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let s = Summary::of(&e).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn pct_helper() {
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(0, 0), 0.0);
    }
}
