//! Resolver platform attribution and comparison (Table 1, §7, Figure 3).

use crate::classify::ConnClass;
use crate::pairing::Pairing;
use crate::stats::{pct, Ecdf};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use zeek_lite::{ConnRecord, DnsTransaction};

/// Maps resolver addresses to platform names.
///
/// Known public-platform addresses are matched exactly; anything else is
/// attributed to the catch-all platform (the local ISP's resolvers, from
/// the monitor's point of view). This is how the paper could label
/// platforms without instrumenting them.
#[derive(Debug, Clone)]
pub struct PlatformMap {
    /// (platform name, addresses). Checked in order.
    pub entries: Vec<(String, Vec<Ipv4Addr>)>,
    /// Name for resolvers not matching any entry.
    pub catch_all: String,
}

impl Default for PlatformMap {
    fn default() -> Self {
        let ip = |a: [u8; 4]| Ipv4Addr::new(a[0], a[1], a[2], a[3]);
        PlatformMap {
            entries: vec![
                ("Google".into(), vec![ip([8, 8, 8, 8]), ip([8, 8, 4, 4])]),
                (
                    "OpenDNS".into(),
                    vec![ip([208, 67, 222, 222]), ip([208, 67, 220, 220])],
                ),
                ("Cloudflare".into(), vec![ip([1, 1, 1, 1]), ip([1, 0, 0, 1])]),
            ],
            catch_all: "Local".into(),
        }
    }
}

impl PlatformMap {
    /// Platform name for a resolver address.
    pub fn platform_of(&self, addr: Ipv4Addr) -> &str {
        for (name, addrs) in &self.entries {
            if addrs.contains(&addr) {
                return name;
            }
        }
        &self.catch_all
    }

    /// All platform names, catch-all first (Table 1's row order).
    pub fn names(&self) -> Vec<String> {
        let mut v = vec![self.catch_all.clone()];
        v.extend(self.entries.iter().map(|(n, _)| n.clone()));
        v
    }
}

/// One row of Table 1 plus the §7/Figure 3 per-platform material.
#[derive(Debug)]
pub struct PlatformReport {
    /// Platform name.
    pub name: String,
    /// % of houses with at least one lookup to the platform.
    pub houses_pct: f64,
    /// % of lookups handled.
    pub lookups_pct: f64,
    /// % of paired connections attributed.
    pub conns_pct: f64,
    /// % of paired-connection bytes attributed.
    pub bytes_pct: f64,
    /// §7 shared-cache hit rate: SC / (SC + R) among this platform's
    /// blocked connections, percent.
    pub hit_rate_pct: f64,
    /// Figure 3 top: lookup durations (ms) behind this platform's R conns.
    pub r_delay_ms: Ecdf,
    /// Figure 3 bottom: throughput (bit/s) of this platform's SC ∪ R conns.
    pub throughput_bps: Ecdf,
    /// Google only: throughput with connectivitycheck conns removed
    /// (the dashed line). Empty for other platforms.
    pub throughput_no_artifact_bps: Ecdf,
    /// Share of this platform's SC ∪ R conns caused by the
    /// connectivity-check hostname (paper: 23.5 % for Google).
    pub artifact_conn_share_pct: f64,
}

/// The Android captive-portal-detection hostname the paper singles out.
pub const CONNECTIVITY_CHECK: &str = "connectivitycheck.gstatic.com";

/// Build Table 1 / §7 / Figure 3 for every platform.
pub fn platform_reports(
    conns: &[ConnRecord],
    dns: &[DnsTransaction],
    pairing: &Pairing,
    classes: &[ConnClass],
    map: &PlatformMap,
) -> Vec<PlatformReport> {
    // ---- lookups and houses ----
    let mut lookups: HashMap<&str, usize> = HashMap::new();
    let mut houses: HashMap<&str, HashSet<Ipv4Addr>> = HashMap::new();
    let mut all_houses: HashSet<Ipv4Addr> = HashSet::new();
    for t in dns {
        let p = map.platform_of(t.resolver);
        *lookups.entry(p).or_default() += 1;
        houses.entry(p).or_default().insert(t.client);
        all_houses.insert(t.client);
    }
    // lint: allow(no-map-iteration): order-insensitive integer sum
    let total_lookups: usize = lookups.values().sum();

    // ---- paired connections ----
    let mut conn_counts: HashMap<&str, usize> = HashMap::new();
    let mut byte_counts: HashMap<&str, u64> = HashMap::new();
    let mut blocked: HashMap<&str, (usize, usize)> = HashMap::new(); // (sc, r)
    let mut r_delays: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut tp: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut tp_clean: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut artifact: HashMap<&str, (usize, usize)> = HashMap::new(); // (artifact, total blocked)
    let mut total_paired = 0usize;
    let mut total_bytes = 0u64;
    for (pair, class) in pairing.pairs.iter().zip(classes) {
        let Some(di) = pair.dns else { continue };
        let txn = &dns[di];
        let p = map.platform_of(txn.resolver);
        let conn = &conns[pair.conn];
        total_paired += 1;
        total_bytes += conn.total_bytes();
        *conn_counts.entry(p).or_default() += 1;
        *byte_counts.entry(p).or_default() += conn.total_bytes();
        let is_blocked = matches!(class, ConnClass::SharedCache | ConnClass::Resolution);
        if is_blocked {
            let b = blocked.entry(p).or_default();
            let a = artifact.entry(p).or_default();
            a.1 += 1;
            let is_artifact = txn.query == CONNECTIVITY_CHECK;
            if is_artifact {
                a.0 += 1;
            }
            match class {
                ConnClass::SharedCache => b.0 += 1,
                ConnClass::Resolution => {
                    b.1 += 1;
                    r_delays
                        .entry(p)
                        .or_default()
                        .push(txn.rtt.expect("paired lookups answered").as_millis_f64());
                }
                _ => unreachable!(),
            }
            if let Some(bps) = conn.throughput_bps() {
                tp.entry(p).or_default().push(bps);
                if !is_artifact {
                    tp_clean.entry(p).or_default().push(bps);
                }
            }
        }
    }

    map.names()
        .into_iter()
        .map(|name| {
            let key = name.as_str();
            let (sc, r) = blocked.get(key).copied().unwrap_or((0, 0));
            let (art, art_total) = artifact.get(key).copied().unwrap_or((0, 0));
            PlatformReport {
                houses_pct: pct(
                    houses.get(key).map(|s| s.len()).unwrap_or(0),
                    all_houses.len(),
                ),
                lookups_pct: pct(lookups.get(key).copied().unwrap_or(0), total_lookups),
                conns_pct: pct(conn_counts.get(key).copied().unwrap_or(0), total_paired),
                bytes_pct: if total_bytes == 0 {
                    0.0
                } else {
                    100.0 * byte_counts.get(key).copied().unwrap_or(0) as f64 / total_bytes as f64
                },
                hit_rate_pct: if sc + r == 0 { 0.0 } else { 100.0 * sc as f64 / (sc + r) as f64 },
                r_delay_ms: Ecdf::new(r_delays.remove(key).unwrap_or_default()),
                throughput_bps: Ecdf::new(tp.remove(key).unwrap_or_default()),
                throughput_no_artifact_bps: Ecdf::new(tp_clean.remove(key).unwrap_or_default()),
                artifact_conn_share_pct: pct(art, art_total),
                name,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use zeek_lite::{Answer, ConnState, Duration, FiveTuple, Proto, Timestamp};

    const HOUSE1: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const HOUSE2: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 2);
    const LOCAL: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const GOOGLE: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
    const SERVER: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);
    const SERVER2: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 2);

    fn txn(ts_ms: u64, client: Ipv4Addr, resolver: Ipv4Addr, addr: Ipv4Addr, rtt_ms: u64, q: &str) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client,
            resolver,
            trans_id: 1,
            query: q.into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(rtt_ms)),
            answers: vec![Answer::addr(addr, 300)],
        }
    }

    fn conn(ts_ms: u64, client: Ipv4Addr, dst: Ipv4Addr, bytes: u64) -> ConnRecord {
        ConnRecord {
            uid: ts_ms,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: client,
                orig_port: 50_000,
                resp_addr: dst,
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(1_000),
            orig_bytes: 100,
            resp_bytes: bytes,
            orig_pkts: 4,
            resp_pkts: 8,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: Some("ssl"),
        }
    }

    #[test]
    fn platform_map_defaults() {
        let m = PlatformMap::default();
        assert_eq!(m.platform_of(GOOGLE), "Google");
        assert_eq!(m.platform_of(Ipv4Addr::new(1, 1, 1, 1)), "Cloudflare");
        assert_eq!(m.platform_of(LOCAL), "Local");
        assert_eq!(m.names()[0], "Local");
    }

    #[test]
    fn reports_attribute_by_resolver() {
        let dns = vec![
            txn(0, HOUSE1, LOCAL, SERVER, 3, "a.com"),
            txn(0, HOUSE2, GOOGLE, SERVER2, 25, "b.com"),
            txn(10_000, HOUSE1, LOCAL, SERVER, 3, "a.com"),
        ];
        let conns = vec![
            conn(5, HOUSE1, SERVER, 10_000),   // blocked on local lookup
            conn(30, HOUSE2, SERVER2, 50_000), // blocked on google lookup
        ];
        let pairing = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let classes = vec![ConnClass::SharedCache, ConnClass::Resolution];
        let reports = platform_reports(&conns, &dns, &pairing, &classes, &PlatformMap::default());
        let local = reports.iter().find(|r| r.name == "Local").unwrap();
        let google = reports.iter().find(|r| r.name == "Google").unwrap();
        assert_eq!(local.houses_pct, 50.0);
        assert_eq!(google.houses_pct, 50.0);
        assert!((local.lookups_pct - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(local.conns_pct, 50.0);
        assert_eq!(local.hit_rate_pct, 100.0);
        assert_eq!(google.hit_rate_pct, 0.0);
        assert_eq!(google.r_delay_ms.len(), 1);
        assert_eq!(local.r_delay_ms.len(), 0);
        assert_eq!(google.throughput_bps.len(), 1);
        // Bytes: local conn 10100 of 60200 total.
        assert!((local.bytes_pct - 100.0 * 10_100.0 / 60_250.0).abs() < 0.2);
    }

    #[test]
    fn connectivity_check_artifact_split() {
        let dns = vec![
            txn(0, HOUSE1, GOOGLE, SERVER, 20, CONNECTIVITY_CHECK),
            txn(10_000, HOUSE1, GOOGLE, SERVER2, 20, "real.example.com"),
        ];
        let conns = vec![conn(25, HOUSE1, SERVER, 200), conn(10_025, HOUSE1, SERVER2, 100_000)];
        let pairing = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let classes = vec![ConnClass::SharedCache, ConnClass::SharedCache];
        let reports = platform_reports(&conns, &dns, &pairing, &classes, &PlatformMap::default());
        let google = reports.iter().find(|r| r.name == "Google").unwrap();
        assert_eq!(google.artifact_conn_share_pct, 50.0);
        assert_eq!(google.throughput_bps.len(), 2);
        assert_eq!(google.throughput_no_artifact_bps.len(), 1);
    }
}
