//! Streaming bounded-memory pipeline: the whole packet→log→pairing→
//! classification path driven in time windows ("epochs") with explicit
//! state eviction, so peak memory is O(window), not O(trace).
//!
//! # Model
//!
//! Frames are fed to an embedded [`zeek_lite::Monitor`] one epoch at a
//! time. At each epoch boundary the engine computes two *watermarks*:
//!
//! - `w_dns  = min(oldest pending DNS query, epoch end)` — every DNS row
//!   the monitor will emit in the future carries a query timestamp at or
//!   after this instant (responses and timeouts inherit the query stamp).
//! - `w_conn = min(oldest active flow start, epoch end)` — every future
//!   connection record starts at or after this instant.
//!
//! Rows stamped strictly before their watermark are *released*: sorted
//! into the canonical log order ([`zeek_lite::Logs::sort`]'s total order)
//! and flushed downstream. Because later releases can only contain rows
//! at or after the previous watermark, the concatenation of all released
//! blocks *is* the batch-sorted log, byte for byte — for any window size.
//!
//! `w_conn <= w_dns` always holds: a pending DNS query's own UDP flow is
//! still active (the flow-timeout exceeds the query timeout and both
//! sweeps fire on the same frames), so released connections only ever
//! look up lookups that have already been released into the pairing
//! index. The index assigns each released row its batch `dns_idx`
//! ordinal, which makes candidate selection — `partition_point` on
//! `(completed, dns_idx)` order, most-recent-live or expired-fallback —
//! identical to [`Pairing::build`] over the full logs.
//!
//! # Eviction
//!
//! An index entry can be dropped once it is expired for every future
//! connection (`expires <= w_conn`) *and* a newer entry under the same
//! `(client, address)` key has already completed (`completed <= w_conn`),
//! because the batch pairing would always prefer that newer entry, live
//! or as the expired fallback. The newest entry per key is never dropped
//! — the expired-fallback rule can reach arbitrarily far back — so the
//! irreducible residue is O(distinct (client, address) pairs), not
//! O(lookups). Per-lookup claim state (first-use) is reference-counted
//! and freed when a lookup's last index entry goes.
//!
//! # Deferred SC/R split
//!
//! The per-resolver SC/R thresholds need the *whole* trace (minimum
//! observed duration and lookup count per resolver), so blocked
//! connections cannot be split into `SC`/`R` at release time. Instead the
//! engine folds, per resolver, the threshold inputs online plus a
//! bucketed count of blocked-lookup durations (integer ceil-milliseconds
//! — exact, because derived thresholds are whole milliseconds) and an
//! exact `<= floor` count for resolvers that end below `min_lookups`.
//! [`StreamEngine::finish`] settles the split; `N`/`LC`/`P` counts,
//! pairing outcomes, and every histogram are folded at release time.
//!
//! # Assumptions
//!
//! - Frame timestamps are monotone non-decreasing (true for the
//!   simulator's captures; disordered input degrades the watermarks to
//!   conservative — rows release later — never to incorrect).
//! - The pairing policy is [`PairingPolicy::MostRecent`]. The random
//!   policy draws from one RNG in conn order interleaved with index
//!   state, which has no bounded-memory equivalent; `new` asserts this.

use crate::classify::ThresholdRule;
use crate::pairing::PairingPolicy;
use crate::{AnalysisConfig, ClassCounts};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::Ipv4Addr;
use xkit::obs::{HistSpec, Metrics};
use zeek_lite::{ConnRecord, DnsTransaction, Duration, Monitor, MonitorConfig, Timestamp};

/// One lookup's relevance to one `(client, address)` key, carrying enough
/// of the transaction to classify a released connection without retaining
/// the DNS log itself.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    completed: Timestamp,
    expires: Timestamp,
    /// The lookup's position in the (virtual) batch dns.log.
    dns_idx: usize,
    resolver: Ipv4Addr,
    rtt: Duration,
}

/// Per-resolver accumulators: threshold inputs plus the deferred SC/R
/// bucket counts. Bounded by the resolver population, not the trace.
#[derive(Debug, Default)]
struct ResolverAcc {
    /// Minimum observed lookup duration, ms (threshold anchor).
    min_ms: f64,
    /// Answered lookups seen (threshold eligibility).
    answered: usize,
    /// Blocked-connection lookup durations, bucketed by ceil-milliseconds.
    blocked_ceil_ms: BTreeMap<u64, u64>,
    /// Blocked connections with duration `<= floor` (used when the
    /// resolver ends below `min_lookups`).
    blocked_le_floor: u64,
    /// All blocked connections attributed to this resolver.
    blocked_total: u64,
}

impl ResolverAcc {
    fn new() -> ResolverAcc {
        ResolverAcc { min_ms: f64::INFINITY, ..ResolverAcc::default() }
    }
}

/// A released connection's pairing outcome, before the sequential
/// first-use / metrics fold (pure function of the index, so it can be
/// computed in parallel).
#[derive(Debug, Clone, Copy)]
struct PairedLite {
    dns_idx: Option<usize>,
    gap: Duration,
    expired: bool,
    resolver: Ipv4Addr,
    rtt: Duration,
}

/// The rows released at one epoch boundary, in canonical log order.
/// Concatenating every epoch's output (plus [`StreamEngine::finish`]'s
/// tail) reproduces the batch logs byte-for-byte.
#[derive(Debug, Default)]
pub struct EpochOutput {
    /// Connection records released this epoch, `(ts, uid)`-sorted.
    pub conns: Vec<ConnRecord>,
    /// DNS rows released this epoch, in [`DnsTransaction::log_order`].
    pub dns: Vec<DnsTransaction>,
}

/// What a completed streaming run settles to.
#[derive(Debug)]
pub struct StreamResult {
    /// Rows still held when the input ended (the final release).
    pub tail: EpochOutput,
    /// The analysis snapshot: byte-identical to the batch pipeline's
    /// `logs.metrics()` merged with `Analysis::metrics()`.
    pub analysis_metrics: Metrics,
    /// The engine's own `stream.*` counters and peak gauges.
    pub stream_metrics: Metrics,
    /// Table 2 counts (SC/R settled from the deferred buckets).
    pub class_counts: ClassCounts,
    /// Derived per-resolver SC/R thresholds.
    pub thresholds: HashMap<Ipv4Addr, Duration>,
}

impl StreamResult {
    /// The settled snapshot: `analysis_metrics` merged with
    /// `stream_metrics` — exactly what `finish()` publishes to the hub,
    /// and what the serve daemon folds per tenant into its aggregate.
    /// Key spaces are disjoint, so the merge is a plain union.
    pub fn settled_metrics(&self) -> Metrics {
        let mut all = self.analysis_metrics.clone();
        all.merge(&self.stream_metrics);
        all
    }
}

/// The streaming engine: feed frames, close epochs, finish.
///
/// ```
/// use dns_context::{stream::StreamEngine, AnalysisConfig};
/// use zeek_lite::MonitorConfig;
///
/// let mut engine = StreamEngine::new(MonitorConfig::default(), AnalysisConfig::default());
/// // for each epoch: engine.handle_frame(...) per frame, then
/// let released = engine.end_epoch(None);
/// assert!(released.conns.is_empty());
/// let result = engine.finish();
/// assert_eq!(result.class_counts.total(), 0);
/// ```
pub struct StreamEngine {
    monitor: Monitor,
    cfg: AnalysisConfig,
    floor: Duration,
    /// Completed-but-unreleased rows; bounded by the window, not the trace.
    buf_conns: Vec<ConnRecord>,
    buf_dns: Vec<DnsTransaction>,
    /// The streaming pairing index, per-key sorted by `(completed, dns_idx)`.
    index: HashMap<(Ipv4Addr, Ipv4Addr), Vec<StreamEntry>>,
    live_entries: u64,
    /// dns_idx → number of live index entries referencing it.
    refcount: HashMap<usize, usize>,
    /// Lookups already claimed by a first-use connection.
    claimed: HashSet<usize>,
    next_dns_idx: usize,
    resolvers: HashMap<Ipv4Addr, ResolverAcc>,
    /// Incrementally folded counters and histograms (`pair.*`, `perf.*`,
    /// `zeek.dns_rtt_ms`, class N/LC/P).
    acc: Metrics,
    class_no_dns: u64,
    class_local_cache: u64,
    class_prefetched: u64,
    released_conns: u64,
    released_dns: u64,
    released_app: u64,
    paired: u64,
    epochs: u64,
    evicted_answers: u64,
    evicted_flows: u64,
    peak_live_flows: u64,
    peak_live_answers: u64,
    /// Live observability plane, when attached: prefix snapshots publish
    /// here at every epoch boundary and notable moments hit its flight
    /// recorder. `None` costs nothing on the frame path.
    hub: Option<xkit::obs::ObsHub>,
}

impl StreamEngine {
    /// Build an engine. Panics on [`PairingPolicy::RandomNonExpired`],
    /// which has no bounded-memory equivalent (see module docs).
    pub fn new(monitor: MonitorConfig, cfg: AnalysisConfig) -> StreamEngine {
        assert!(
            matches!(cfg.policy, PairingPolicy::MostRecent),
            "streaming supports the MostRecent pairing policy only"
        );
        let floor = Duration::from_secs_f64(cfg.threshold_rule.floor_ms / 1e3);
        StreamEngine {
            monitor: Monitor::new(monitor),
            cfg,
            floor,
            buf_conns: Vec::new(),
            buf_dns: Vec::new(),
            index: HashMap::new(),
            live_entries: 0,
            refcount: HashMap::new(),
            claimed: HashSet::new(),
            next_dns_idx: 0,
            resolvers: HashMap::new(),
            acc: Metrics::new(),
            class_no_dns: 0,
            class_local_cache: 0,
            class_prefetched: 0,
            released_conns: 0,
            released_dns: 0,
            released_app: 0,
            paired: 0,
            epochs: 0,
            evicted_answers: 0,
            evicted_flows: 0,
            peak_live_flows: 0,
            peak_live_answers: 0,
            hub: None,
        }
    }

    /// Attach a live observability hub: the embedded monitor feeds the
    /// hub's flight recorder (`fault.reject`/`parse.degrade`), the engine
    /// records `epoch.release`/`state.evict` events, and every epoch
    /// boundary publishes a snapshot that is a valid prefix of the final
    /// metrics (all counters monotone; finish-only keys — the settled
    /// SC/R split and per-resolver thresholds — stay absent mid-run).
    pub fn set_hub(&mut self, hub: xkit::obs::ObsHub) {
        self.monitor.set_flight(hub.flight().clone());
        self.hub = Some(hub);
    }

    /// Fold current state into the hub (no-op without one). Published
    /// counters are the already-folded accumulators, so a scrape between
    /// two epochs never exceeds the final value of any counter and the
    /// degradation identities hold at every instant; the `stream.live_*`
    /// and `stream.w_*` gauges are point-in-time readings.
    fn publish_live(&self, w_conn: Timestamp, w_dns: Timestamp) {
        let Some(hub) = &self.hub else { return };
        let mut m = self.monitor.live_metrics();
        m.add("zeek.conn_rows", self.released_conns);
        m.add("zeek.dns_rows", self.released_dns);
        m.add("zeek.app_conns", self.released_app);
        m.merge(&self.acc);
        m.add("cover.app_conns", self.released_app);
        m.add("cover.paired", self.paired);
        m.add("class.no_dns", self.class_no_dns);
        m.add("class.local_cache", self.class_local_cache);
        m.add("class.prefetched", self.class_prefetched);
        m.add("stream.epochs", self.epochs);
        m.add("stream.evicted_answers", self.evicted_answers);
        m.add("stream.evicted_flows", self.evicted_flows);
        m.gauge_max("stream.peak_live_flows", self.peak_live_flows as f64);
        m.gauge_max("stream.peak_live_answers", self.peak_live_answers as f64);
        let (flows, answers) = self.live_state();
        m.gauge_max("stream.live_flows", flows as f64);
        m.gauge_max("stream.live_answers", answers as f64);
        m.gauge_max("stream.w_conn_s", w_conn.0 as f64 / 1e9);
        m.gauge_max("stream.w_dns_s", w_dns.0 as f64 / 1e9);
        hub.publish_metrics(m);
    }

    /// Feed one captured frame to the embedded monitor.
    pub fn handle_frame(&mut self, ts: Timestamp, captured: &[u8], orig_len: u32) {
        self.monitor.handle_frame(ts, captured, orig_len);
    }

    /// Close the current epoch. `boundary` is the epoch's exclusive end
    /// (`None` for an unwindowed run, which releases nothing until
    /// [`finish`](StreamEngine::finish)). Returns the rows released by
    /// the watermarks; the engine retains nothing about them beyond the
    /// folded counters.
    pub fn end_epoch(&mut self, boundary: Option<Timestamp>) -> EpochOutput {
        self.epochs += 1;
        self.buf_conns.extend(self.monitor.drain_conns());
        self.buf_dns.extend(self.monitor.drain_dns());

        // High-water marks over everything currently held in memory,
        // measured before the release empties the buffers.
        let live_flows = self.monitor.active_flows() as u64 + self.buf_conns.len() as u64;
        self.peak_live_flows = self.peak_live_flows.max(live_flows);
        // Answers are counted per *lookup* (a multi-address response pins
        // one row however many index entries it fans out to), so the peak
        // compares directly against the full-trace dns.log row count.
        let live_answers = self.refcount.len() as u64
            + self.buf_dns.len() as u64
            + self.monitor.pending_dns() as u64;
        self.peak_live_answers = self.peak_live_answers.max(live_answers);

        let cap = boundary.unwrap_or(Timestamp::ZERO);
        if boundary.is_none() {
            // Unwindowed: nothing is safe to release before end of input,
            // but the live plane still sees the folded counters.
            self.publish_live(Timestamp::ZERO, Timestamp::ZERO);
            return EpochOutput::default();
        }
        let w_dns = self.monitor.oldest_pending_dns_ts().map_or(cap, |t| t.min(cap));
        let w_conn = self.monitor.oldest_active_flow_start().map_or(cap, |t| t.min(cap));
        // The invariant w_conn <= w_dns holds for monotone input (module
        // docs); the clamp keeps disordered input conservative.
        let w_conn = w_conn.min(w_dns);
        let evicted_before = self.evicted_answers;
        let out = self.release(w_conn, w_dns);
        self.evicted_flows += out.conns.len() as u64;
        self.evict(w_conn);
        if let Some(hub) = &self.hub {
            hub.flight().record(
                "epoch.release",
                format!(
                    "epoch {}: {} conn + {} dns rows",
                    self.epochs,
                    out.conns.len(),
                    out.dns.len()
                ),
                (out.conns.len() + out.dns.len()) as f64,
            );
            let evicted = self.evicted_answers - evicted_before;
            if evicted > 0 {
                hub.flight().record(
                    "state.evict",
                    format!("epoch {}: index entries dropped", self.epochs),
                    evicted as f64,
                );
            }
        }
        self.publish_live(w_conn, w_dns);
        out
    }

    /// Flush everything: drain the monitor, release all remaining rows,
    /// settle the deferred SC/R split, and assemble both snapshots.
    pub fn finish(mut self) -> StreamResult {
        let monitor =
            std::mem::replace(&mut self.monitor, Monitor::new(MonitorConfig::default()));
        let residual = monitor.finish();
        let zeek_lite::Logs { conns, dns, stats, degradation } = residual;
        self.buf_conns.extend(conns);
        self.buf_dns.extend(dns);
        let tail = self.release(Timestamp(u64::MAX), Timestamp(u64::MAX));

        // Settle the deferred SC/R split from the per-resolver buckets.
        let rule: ThresholdRule = self.cfg.threshold_rule;
        let mut thresholds: HashMap<Ipv4Addr, Duration> = HashMap::new();
        let mut shared_cache = 0u64;
        let mut resolution = 0u64;
        // lint: allow(no-map-iteration): order-insensitive integer folds per resolver
        for (addr, acc) in &self.resolvers {
            if acc.answered >= rule.min_lookups {
                let thr_ms = (acc.min_ms * rule.mult + rule.add_ms).max(rule.floor_ms).ceil();
                thresholds.insert(*addr, Duration::from_secs_f64(thr_ms / 1e3));
                // Derived thresholds are whole milliseconds, so
                // `dur <= thr` is exactly `ceil_ms(dur) <= thr_ms`.
                let sc: u64 = acc.blocked_ceil_ms.range(..=thr_ms as u64).map(|(_, n)| n).sum();
                shared_cache += sc;
                resolution += acc.blocked_total - sc;
            } else {
                shared_cache += acc.blocked_le_floor;
                resolution += acc.blocked_total - acc.blocked_le_floor;
            }
        }
        let class_counts = ClassCounts {
            no_dns: self.class_no_dns as usize,
            local_cache: self.class_local_cache as usize,
            prefetched: self.class_prefetched as usize,
            shared_cache: shared_cache as usize,
            resolution: resolution as usize,
        };

        // The analysis snapshot, assembled to match the batch pipeline's
        // `logs.metrics()` merged with `Analysis::metrics()` exactly.
        let mut m = stats.to_metrics();
        m.merge(&degradation.to_metrics());
        m.add("zeek.conn_rows", self.released_conns);
        m.add("zeek.dns_rows", self.released_dns);
        m.add("zeek.app_conns", self.released_app);
        // The batch snapshot always carries this key, even at zero.
        m.add("perf.blocked_conns", 0);
        m.merge(&self.acc);
        m.gauge_max("cover.frame_acceptance", degradation.frame_acceptance());
        m.gauge_max("cover.dns_acceptance", degradation.dns_acceptance());
        m.add("cover.app_conns", self.released_app);
        m.add("cover.paired", self.paired);
        m.add("class.no_dns", self.class_no_dns);
        m.add("class.local_cache", self.class_local_cache);
        m.add("class.prefetched", self.class_prefetched);
        m.add("class.shared_cache", shared_cache);
        m.add("class.resolution", resolution);
        m.add("threshold.resolvers", thresholds.len() as u64);
        // lint: allow(no-map-iteration): one metrics key per map key; Metrics stores sorted
        for (addr, thr) in &thresholds {
            m.gauge_max(&format!("threshold.{addr}.ms"), thr.as_millis_f64());
        }

        let mut s = Metrics::new();
        s.add("stream.epochs", self.epochs);
        s.add("stream.evicted_answers", self.evicted_answers);
        s.add("stream.evicted_flows", self.evicted_flows);
        s.gauge_max("stream.peak_live_flows", self.peak_live_flows as f64);
        s.gauge_max("stream.peak_live_answers", self.peak_live_answers as f64);

        // The last published snapshot is the settled one: every mid-run
        // scrape was a prefix of it.
        if let Some(hub) = &self.hub {
            let mut all = m.clone();
            all.merge(&s);
            hub.publish_metrics(all);
        }

        StreamResult {
            tail,
            analysis_metrics: m,
            stream_metrics: s,
            class_counts,
            thresholds,
        }
    }

    /// Release buffered rows below the watermarks: DNS first (the index
    /// must contain every lookup a released connection could pair with),
    /// then connections.
    fn release(&mut self, w_conn: Timestamp, w_dns: Timestamp) -> EpochOutput {
        let (mut dns_out, keep): (Vec<_>, Vec<_>) =
            std::mem::take(&mut self.buf_dns).into_iter().partition(|d| d.ts < w_dns);
        self.buf_dns = keep;
        dns_out.sort_by(DnsTransaction::log_order);
        for txn in &dns_out {
            self.ingest_dns(txn);
        }

        let (mut conn_out, keep): (Vec<_>, Vec<_>) =
            std::mem::take(&mut self.buf_conns).into_iter().partition(|c| c.ts < w_conn);
        self.buf_conns = keep;
        conn_out.sort_by_key(|c| (c.ts, c.uid));
        self.absorb_conns(&conn_out);

        EpochOutput { conns: conn_out, dns: dns_out }
    }

    /// Give one released DNS row its batch ordinal and fold it into the
    /// index, the threshold accumulators, and the RTT histogram.
    fn ingest_dns(&mut self, txn: &DnsTransaction) {
        self.released_dns += 1;
        let idx = self.next_dns_idx;
        self.next_dns_idx += 1;
        if let Some(rtt) = txn.rtt {
            self.acc.observe_with("zeek.dns_rtt_ms", HistSpec::time_ms(), rtt.as_millis_f64());
            let acc = self.resolvers.entry(txn.resolver).or_insert_with(ResolverAcc::new);
            acc.min_ms = acc.min_ms.min(rtt.as_millis_f64());
            acc.answered += 1;
        }
        let (Some(completed), Some(expires)) = (txn.completed_at(), txn.expires_at()) else {
            return;
        };
        let rtt = txn.rtt.expect("completed lookups are answered");
        for addr in txn.addrs() {
            let entries = self.index.entry((txn.client, addr)).or_default();
            let pos = entries.partition_point(|e| (e.completed, e.dns_idx) <= (completed, idx));
            entries.insert(
                pos,
                StreamEntry { completed, expires, dns_idx: idx, resolver: txn.resolver, rtt },
            );
            self.live_entries += 1;
            *self.refcount.entry(idx).or_insert(0) += 1;
        }
    }

    /// Pair one application connection against the index — the exact
    /// per-connection rule of [`Pairing::build`], over released lookups.
    fn pair_conn(
        index: &HashMap<(Ipv4Addr, Ipv4Addr), Vec<StreamEntry>>,
        conn: &ConnRecord,
    ) -> PairedLite {
        let unpaired = PairedLite {
            dns_idx: None,
            gap: Duration::ZERO,
            expired: false,
            resolver: Ipv4Addr::UNSPECIFIED,
            rtt: Duration::ZERO,
        };
        let Some(entries) = index.get(&(conn.id.orig_addr, conn.id.resp_addr)) else {
            return unpaired;
        };
        let upto = entries.partition_point(|e| e.completed <= conn.ts);
        if upto == 0 {
            return unpaired;
        }
        let prior = &entries[..upto];
        // Streaming is MostRecent-only, so one reverse scan for the newest
        // live entry replaces collecting candidates into a Vec.
        let last_live = prior.iter().rev().find(|e| e.expires > conn.ts);
        let (chosen, expired) = if let Some(last_live) = last_live {
            (*last_live, false)
        } else {
            (*prior.last().expect("upto > 0"), true)
        };
        PairedLite {
            dns_idx: Some(chosen.dns_idx),
            gap: conn.ts.since(chosen.completed),
            expired,
            resolver: chosen.resolver,
            rtt: chosen.rtt,
        }
    }

    /// Fold a `(ts, uid)`-sorted release batch of connections into the
    /// pairing/classification accumulators. Candidate lookup fans out
    /// over the configured worker threads (a pure read of the index);
    /// the first-use claim pass and the metric folds stay sequential, so
    /// results are identical for every thread count.
    fn absorb_conns(&mut self, conns: &[ConnRecord]) {
        self.released_conns += conns.len() as u64;
        let app: Vec<&ConnRecord> = conns.iter().filter(|c| !c.is_dns()).collect();
        if app.is_empty() {
            return;
        }
        let index = &self.index;
        let workers = xkit::par::resolve_threads(self.cfg.threads).min(app.len());
        let lite: Vec<PairedLite> = if workers <= 1 {
            app.iter().map(|c| Self::pair_conn(index, c)).collect()
        } else {
            let chunks: Vec<&[&ConnRecord]> = app.chunks(app.len().div_ceil(workers)).collect();
            xkit::par::par_map(self.cfg.threads, chunks, |_, chunk| {
                chunk.iter().map(|c| Self::pair_conn(index, c)).collect::<Vec<PairedLite>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };

        let mut hit = 0u64;
        let mut fallback = 0u64;
        let mut miss = 0u64;
        let mut first_uses = 0u64;
        for p in &lite {
            self.released_app += 1;
            let Some(di) = p.dns_idx else {
                miss += 1;
                self.class_no_dns += 1;
                continue;
            };
            self.paired += 1;
            if p.expired {
                fallback += 1;
            } else {
                hit += 1;
            }
            self.acc.observe_with("pair.gap_ms", HistSpec::time_ms(), p.gap.as_millis_f64());
            let first_use = self.claimed.insert(di);
            first_uses += u64::from(first_use);
            if p.gap > self.cfg.block_threshold {
                if first_use {
                    self.class_prefetched += 1;
                } else {
                    self.class_local_cache += 1;
                }
            } else {
                // Blocked: SC vs R settles at finish; everything else
                // about the connection is already known.
                self.acc.add("perf.blocked_conns", 1);
                self.acc.observe_with(
                    "perf.blocked_dns_ms",
                    HistSpec::time_ms(),
                    p.rtt.as_millis_f64(),
                );
                let acc = self.resolvers.entry(p.resolver).or_insert_with(ResolverAcc::new);
                acc.blocked_total += 1;
                *acc.blocked_ceil_ms.entry(p.rtt.nanos().div_ceil(1_000_000)).or_insert(0) += 1;
                if p.rtt <= self.floor {
                    acc.blocked_le_floor += 1;
                }
            }
        }
        self.acc.add("pair.hit", hit);
        self.acc.add("pair.fallback", fallback);
        self.acc.add("pair.miss", miss);
        self.acc.add("pair.first_use", first_uses);
        self.acc.add("pair.app_conns", app.len() as u64);
    }

    /// Drop index entries no future connection can pair with (module
    /// docs), releasing per-lookup claim state when the last entry goes.
    fn evict(&mut self, w: Timestamp) {
        let mut dropped: Vec<usize> = Vec::new();
        // lint: allow(no-map-iteration): each key's run is pruned independently
        for entries in self.index.values_mut() {
            let cut = entries.partition_point(|e| e.completed <= w);
            if cut < 2 {
                // No entry has both a newer completed witness and a
                // position before it.
                continue;
            }
            let last_keep = cut - 1;
            let mut pos = 0usize;
            entries.retain(|e| {
                let gone = pos < last_keep && e.expires <= w;
                pos += 1;
                if gone {
                    dropped.push(e.dns_idx);
                }
                !gone
            });
        }
        for di in dropped {
            self.evicted_answers += 1;
            self.live_entries -= 1;
            let rc = self.refcount.get_mut(&di).expect("evicted entries are refcounted");
            *rc -= 1;
            if *rc == 0 {
                self.refcount.remove(&di);
                self.claimed.remove(&di);
            }
        }
    }

    /// Live state right now: `(flows, answers)` — tracker + buffered
    /// connections, and pinned + buffered + pending DNS lookups.
    pub fn live_state(&self) -> (u64, u64) {
        (
            self.monitor.active_flows() as u64 + self.buf_conns.len() as u64,
            self.refcount.len() as u64
                + self.buf_dns.len() as u64
                + self.monitor.pending_dns() as u64,
        )
    }
}

/// Drive any [`pcapio::RecordSource`] — file reader, in-memory ring, or
/// live interface — through a [`StreamEngine`] in `window`-sized epochs,
/// handing each epoch's released rows to `sink`. A zero `window` runs a
/// single epoch (everything releases at
/// [`finish`](StreamEngine::finish), as in the batch pipeline).
///
/// This is the streaming counterpart of `Monitor::process_source`
/// followed by `Analysis::run`: same rows, same metrics, O(window) peak
/// memory.
pub fn process_source<S: pcapio::RecordSource + ?Sized>(
    source: &mut S,
    window: Duration,
    monitor: MonitorConfig,
    cfg: AnalysisConfig,
    sink: impl FnMut(EpochOutput),
) -> Result<StreamResult, pcapio::PcapError> {
    process_source_observed(source, window, monitor, cfg, None, sink)
}

/// [`process_source`] with an optional live observability hub attached to
/// the engine (see [`StreamEngine::set_hub`]): every epoch boundary
/// publishes a prefix snapshot and feeds the hub's flight recorder, so an
/// HTTP scrape at any instant sees internally consistent counters.
pub fn process_source_observed<S: pcapio::RecordSource + ?Sized>(
    source: &mut S,
    window: Duration,
    monitor: MonitorConfig,
    cfg: AnalysisConfig,
    hub: Option<&xkit::obs::ObsHub>,
    mut sink: impl FnMut(EpochOutput),
) -> Result<StreamResult, pcapio::PcapError> {
    let mut engine = StreamEngine::new(monitor, cfg);
    if let Some(hub) = hub {
        engine.set_hub(hub.clone());
    }
    let window_nanos = window.nanos();
    // Inline epoch windowing over the source's borrowed records (the
    // frames feed the engine immediately, so nothing needs to be owned).
    // Semantics mirror `pcapio::Epochs` exactly: epoch k covers
    // [k*window, (k+1)*window) ns, the epoch index is clamped monotone on
    // disordered input, the first record opens its own epoch, window 0 is
    // a single epoch with no boundary, and a read error ends the stream
    // after the records already consumed (the failing record is counted
    // in `capture.frames_rejected`).
    let mut current_epoch = 0u64;
    let mut started = false;
    loop {
        let rec = match source.next() {
            Ok(Some(rec)) => rec,
            Ok(None) | Err(_) => break,
        };
        let e = if window_nanos == 0 {
            0
        } else {
            (rec.ts_nanos / window_nanos).max(current_epoch)
        };
        if !started {
            started = true;
            current_epoch = e;
        } else if e != current_epoch {
            let boundary = Some(Timestamp((current_epoch + 1).saturating_mul(window_nanos)));
            sink(engine.end_epoch(boundary));
            current_epoch = e;
        }
        engine.handle_frame(Timestamp(rec.ts_nanos), rec.data, rec.orig_len);
    }
    if started {
        let boundary = if window_nanos == 0 {
            None
        } else {
            Some(Timestamp((current_epoch + 1).saturating_mul(window_nanos)))
        };
        sink(engine.end_epoch(boundary));
    }
    Ok(engine.finish())
}

/// The file-backend spelling of [`process_source`]: parse the pcap
/// global header from `input` and stream the records through the engine.
pub fn process_pcap<R: std::io::Read>(
    input: R,
    window: Duration,
    monitor: MonitorConfig,
    cfg: AnalysisConfig,
    sink: impl FnMut(EpochOutput),
) -> Result<StreamResult, pcapio::PcapError> {
    let mut source = pcapio::source::file(input)?;
    process_source(&mut source, window, monitor, cfg, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;
    use std::net::Ipv4Addr;
    use zeek_lite::{Answer, ConnState, FiveTuple, Logs, Proto};

    const HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const SERVER: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);

    fn txn(ts_ms: u64, id: u16, ttl: u32) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client: HOUSE,
            resolver: RESOLVER,
            trans_id: id,
            query: format!("q{id}.example.com"),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(4)),
            answers: vec![Answer::addr(SERVER, ttl)],
        }
    }

    fn conn(ts_ms: u64, uid: u64) -> ConnRecord {
        ConnRecord {
            uid,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: HOUSE,
                orig_port: 50_000 + uid as u16,
                resp_addr: SERVER,
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(500),
            orig_bytes: 100,
            resp_bytes: 1_000,
            orig_pkts: 4,
            resp_pkts: 4,
            state: ConnState::SF,
            history: "ShAaFf".into(),
            service: Some("ssl"),
        }
    }

    /// Drive pre-built log rows through the engine's release path directly
    /// (bypassing the monitor) by staging them in the buffers, one epoch
    /// per row timestamp window.
    fn stream_rows(
        conns: Vec<ConnRecord>,
        dns: Vec<DnsTransaction>,
        boundaries_ms: &[u64],
        mut cfg: AnalysisConfig,
    ) -> (Vec<ConnRecord>, Vec<DnsTransaction>, StreamResult) {
        cfg.threads = 1;
        let mut engine = StreamEngine::new(MonitorConfig::default(), cfg);
        engine.buf_conns = conns;
        engine.buf_dns = dns;
        let mut got_conns = Vec::new();
        let mut got_dns = Vec::new();
        for &b in boundaries_ms {
            let out = engine.end_epoch(Some(Timestamp::from_millis(b)));
            got_conns.extend(out.conns);
            got_dns.extend(out.dns);
        }
        let result = engine.finish();
        got_conns.extend(result.tail.conns.iter().cloned());
        got_dns.extend(result.tail.dns.iter().cloned());
        (got_conns, got_dns, result)
    }

    #[test]
    fn streamed_release_matches_batch_pairing() {
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        // Lookup at 1s (TTL 300); conns at 1.01s (blocked), 30s (LC),
        // and a second lookup at 60s with a conn at 60.2s (prefetched
        // would need first use; it's LC since lookup 1 still live... the
        // batch run is the oracle either way).
        let dns = vec![txn(1_000, 1, 300), txn(60_000, 2, 300)];
        let conns = vec![conn(1_010, 1), conn(30_000, 2), conn(60_200, 3)];
        let mut logs = Logs { conns: conns.clone(), dns: dns.clone(), ..Default::default() };
        logs.sort();
        let analysis = Analysis::run(&logs, cfg.clone());
        let mut batch = logs.metrics();
        batch.merge(&analysis.metrics());

        let (got_conns, got_dns, result) =
            stream_rows(conns, dns, &[10_000, 45_000, 70_000], cfg);
        assert_eq!(got_conns, logs.conns);
        assert_eq!(got_dns, logs.dns);
        assert_eq!(result.class_counts, analysis.class_counts());
        assert_eq!(result.thresholds, analysis.thresholds);
        // Stats/degradation come from the monitor (zero here, both
        // sides); everything analysis-side must agree byte for byte.
        assert_eq!(result.analysis_metrics.to_json(), batch.to_json());
    }

    #[test]
    fn eviction_keeps_expired_fallback_reachable() {
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        // Two short-TTL lookups; a conn long after both must still take
        // the newest as expired fallback, even though the older one was
        // evicted in between.
        let dns = vec![txn(1_000, 1, 1), txn(2_000, 2, 1)];
        let conns = vec![conn(500_000, 1)];
        let mut logs = Logs { conns: conns.clone(), dns: dns.clone(), ..Default::default() };
        logs.sort();
        let analysis = Analysis::run(&logs, cfg.clone());
        let mut batch = logs.metrics();
        batch.merge(&analysis.metrics());

        let (_, _, result) = stream_rows(conns, dns, &[100_000, 400_000], cfg);
        let evicted = result.stream_metrics.counter("stream.evicted_answers");
        assert_eq!(evicted, 1, "the older expired entry must be evicted");
        assert_eq!(result.analysis_metrics.to_json(), batch.to_json());
        assert_eq!(result.class_counts, analysis.class_counts());
    }

    #[test]
    fn unwindowed_epoch_releases_nothing_until_finish() {
        let cfg = AnalysisConfig::default();
        let mut engine = StreamEngine::new(MonitorConfig::default(), cfg);
        engine.buf_conns = vec![conn(1_000, 1)];
        engine.buf_dns = vec![txn(500, 1, 60)];
        let out = engine.end_epoch(None);
        assert!(out.conns.is_empty() && out.dns.is_empty());
        let result = engine.finish();
        assert_eq!(result.tail.conns.len(), 1);
        assert_eq!(result.tail.dns.len(), 1);
        assert_eq!(result.stream_metrics.counter("stream.epochs"), 1);
    }

    #[test]
    fn hub_sees_prefix_snapshots_and_flight_events() {
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        cfg.threads = 1;
        let hub = xkit::obs::ObsHub::default();
        let mut engine = StreamEngine::new(MonitorConfig::default(), cfg);
        engine.set_hub(hub.clone());
        engine.buf_dns = vec![txn(1_000, 1, 1), txn(2_000, 2, 1)];
        engine.buf_conns = vec![conn(500_000, 1)];

        engine.end_epoch(Some(Timestamp::from_millis(100_000)));
        let mid = hub.metrics();
        assert_eq!(mid.counter("stream.epochs"), 1);
        assert_eq!(mid.counter("zeek.dns_rows"), 2);
        // Mid-run snapshots never carry finish-only keys.
        assert_eq!(mid.counter("class.shared_cache"), 0);

        engine.end_epoch(Some(Timestamp::from_millis(400_000)));
        let result = engine.finish();
        let fin = hub.metrics();
        // The finish-time publication is the settled snapshot, and every
        // mid-run counter is bounded by its final value.
        assert_eq!(fin.to_json(), result.settled_metrics().to_json());
        for (name, v) in [("stream.epochs", 1), ("zeek.dns_rows", 2)] {
            assert!(mid.counter(name) >= v && mid.counter(name) <= fin.counter(name));
        }

        let events = hub.flight().snapshot();
        assert!(events.iter().any(|e| e.kind == "epoch.release"));
        assert!(
            events.iter().any(|e| e.kind == "state.evict" && e.value == 1.0),
            "the older expired entry's eviction must hit the flight ring"
        );
    }

    #[test]
    fn random_policy_is_rejected() {
        let mut cfg = AnalysisConfig::default();
        cfg.policy = PairingPolicy::RandomNonExpired;
        let err = std::panic::catch_unwind(|| {
            StreamEngine::new(MonitorConfig::default(), cfg);
        });
        assert!(err.is_err());
    }
}
