//! Time-series views of the analysis: how DNS' role varies over the day.
//!
//! The paper aggregates its week into single numbers; a diurnal breakdown
//! is the first question an operator asks next ("is the blocked share
//! worse at peak?"), and it doubles as a check that the workload model's
//! time-of-day structure is sane.

use crate::classify::{ClassCounts, ConnClass};
use crate::pairing::Pairing;
use zeek_lite::{ConnRecord, Duration, Timestamp};

/// One time bucket's classification summary.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Bucket start.
    pub start: Timestamp,
    /// Class tallies for connections starting in the bucket.
    pub classes: ClassCounts,
}

impl Bucket {
    /// Connections in the bucket.
    pub fn total(&self) -> usize {
        self.classes.total()
    }
}

/// Bucket the classified connections by start time.
///
/// Buckets are aligned to the first connection's timestamp; empty
/// buckets in the middle of the trace are preserved (their counts are
/// zero) so the series is evenly spaced.
pub fn bucketize(
    conns: &[ConnRecord],
    pairing: &Pairing,
    classes: &[ConnClass],
    width: Duration,
) -> Vec<Bucket> {
    assert!(width.nanos() > 0, "bucket width must be positive");
    let Some(first) = pairing.pairs.first().map(|p| conns[p.conn].ts) else {
        return Vec::new();
    };
    let mut buckets: Vec<Bucket> = Vec::new();
    for (pair, class) in pairing.pairs.iter().zip(classes) {
        let ts = conns[pair.conn].ts;
        let idx = (ts.since(first).nanos() / width.nanos()) as usize;
        while buckets.len() <= idx {
            let start = first + Duration(width.nanos() * buckets.len() as u64);
            buckets.push(Bucket { start, classes: ClassCounts::default() });
        }
        let c = &mut buckets[idx].classes;
        match class {
            ConnClass::NoDns => c.no_dns += 1,
            ConnClass::LocalCache => c.local_cache += 1,
            ConnClass::Prefetched => c.prefetched += 1,
            ConnClass::SharedCache => c.shared_cache += 1,
            ConnClass::Resolution => c.resolution += 1,
        }
    }
    buckets
}

/// Fold buckets into 24 hour-of-day slots (UTC hours of the capture
/// timeline) — the diurnal profile. Returns `[(hour, ClassCounts); 24]`.
pub fn hour_of_day_profile(
    conns: &[ConnRecord],
    pairing: &Pairing,
    classes: &[ConnClass],
) -> [(u8, ClassCounts); 24] {
    let mut out: [(u8, ClassCounts); 24] =
        std::array::from_fn(|h| (h as u8, ClassCounts::default()));
    for (pair, class) in pairing.pairs.iter().zip(classes) {
        let secs = conns[pair.conn].ts.nanos() / 1_000_000_000;
        let hour = ((secs / 3_600) % 24) as usize;
        let c = &mut out[hour].1;
        match class {
            ConnClass::NoDns => c.no_dns += 1,
            ConnClass::LocalCache => c.local_cache += 1,
            ConnClass::Prefetched => c.prefetched += 1,
            ConnClass::SharedCache => c.shared_cache += 1,
            ConnClass::Resolution => c.resolution += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use std::net::Ipv4Addr;
    use zeek_lite::{ConnState, FiveTuple, Proto};

    fn conn(ts_secs: u64, uid: u64) -> ConnRecord {
        ConnRecord {
            uid,
            ts: Timestamp::from_secs(ts_secs),
            id: FiveTuple {
                orig_addr: Ipv4Addr::new(10, 77, 0, 1),
                orig_port: 50_000,
                resp_addr: Ipv4Addr::new(9, 9, 9, 9),
                resp_port: 51_000,
                proto: Proto::Tcp,
            },
            duration: Duration::from_secs(1),
            orig_bytes: 1,
            resp_bytes: 1,
            orig_pkts: 1,
            resp_pkts: 1,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: None,
        }
    }

    fn classified(conns: &[ConnRecord]) -> (Pairing, Vec<ConnClass>) {
        let pairing = Pairing::build(conns, &[], PairingPolicy::MostRecent);
        let n = pairing.pairs.len();
        (pairing, vec![ConnClass::NoDns; n])
    }

    #[test]
    fn buckets_are_even_and_complete() {
        let conns: Vec<ConnRecord> = [0u64, 30, 100, 250, 260].iter().enumerate()
            .map(|(i, s)| conn(*s, i as u64))
            .collect();
        let (pairing, classes) = classified(&conns);
        let buckets = bucketize(&conns, &pairing, &classes, Duration::from_secs(60));
        assert_eq!(buckets.len(), 5); // spans [0, 260] in 60 s buckets
        assert_eq!(buckets[0].total(), 2);
        assert_eq!(buckets[1].total(), 1);
        assert_eq!(buckets[2].total(), 0); // preserved empty bucket
        assert_eq!(buckets[3].total(), 0);
        assert_eq!(buckets[4].total(), 2);
        let total: usize = buckets.iter().map(|b| b.total()).sum();
        assert_eq!(total, conns.len());
        assert_eq!(buckets[1].start, Timestamp::from_secs(60));
    }

    #[test]
    fn empty_input() {
        let (pairing, classes) = classified(&[]);
        assert!(bucketize(&[], &pairing, &classes, Duration::from_secs(60)).is_empty());
    }

    #[test]
    fn hour_profile_wraps_midnight() {
        // 23:30 and 00:30 on consecutive days land in hours 23 and 0.
        let conns = vec![conn(23 * 3_600 + 1_800, 0), conn(24 * 3_600 + 1_800, 1)];
        let (pairing, classes) = classified(&conns);
        let profile = hour_of_day_profile(&conns, &pairing, &classes);
        assert_eq!(profile[23].1.total(), 1);
        assert_eq!(profile[0].1.total(), 1);
        let total: usize = profile.iter().map(|(_, c)| c.total()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let (pairing, classes) = classified(&[]);
        bucketize(&[], &pairing, &classes, Duration::ZERO);
    }
}
