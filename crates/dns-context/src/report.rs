//! Plain-text table and CDF-series rendering for the experiment harness.

use crate::stats::Ecdf;
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with right-aligned numeric-looking columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                if i == 0 {
                    let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with one decimal (the paper's percentage style).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a count with thousands separators.
pub fn count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Render a CDF as a CSV-ish series block: `x,F(x)` lines under a header,
/// suitable for re-plotting a figure.
pub fn cdf_series(label: &str, e: &Ecdf, points: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cdf: {label} (n={})", e.len());
    for (x, f) in e.curve(points) {
        let _ = writeln!(out, "{x:.6},{f:.4}");
    }
    out
}

/// Render a compact quantile strip for a CDF — a textual stand-in for a
/// figure's line, with enough anchors to compare shapes.
pub fn cdf_strip(label: &str, e: &Ecdf, unit: &str) -> String {
    match crate::stats::Summary::of(e) {
        None => format!("{label:<28} (empty)\n"),
        Some(s) => format!(
            "{label:<28} p10={:>9.2}{u} p25={:>9.2}{u} p50={:>9.2}{u} p75={:>9.2}{u} p90={:>9.2}{u} p99={:>9.2}{u}  (n={})\n",
            e.quantile(0.10).unwrap(),
            s.p25,
            s.median,
            s.p75,
            s.p90,
            s.p99,
            s.count,
            u = unit,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Class", "Conns", "%"]);
        t.row(&["N".into(), "812000".into(), "7.2".into()]);
        t.row(&["LC".into(), "4800000".into(), "42.9".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Numeric columns right-aligned: the % column values end at the
        // same character offset.
        let col_end = |l: &str| l.rfind(|c: char| !c.is_whitespace()).unwrap();
        assert_eq!(col_end(lines[3]), col_end(lines[4]));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(&["only one".into()]);
    }

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
        assert_eq!(count(11_200_000), "11,200,000");
    }

    #[test]
    fn cdf_series_emits_points() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let s = cdf_series("delays", &e, 10);
        assert!(s.starts_with("# cdf: delays (n=100)"));
        assert_eq!(s.lines().count(), 11);
    }

    #[test]
    fn cdf_strip_handles_empty() {
        let s = cdf_strip("nothing", &Ecdf::new(vec![]), "ms");
        assert!(s.contains("empty"));
    }
}
