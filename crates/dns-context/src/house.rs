//! Per-house breakdowns.
//!
//! The paper reports aggregates over ~100 NATed houses; operators running
//! this pipeline on their own network want the same numbers *per house*
//! (which homes suffer DNS delays, which run P2P, which would benefit
//! from a caching router). Everything here is derived from the shared
//! [`Analysis`](crate::Analysis) result.

use crate::classify::{ClassCounts, ConnClass};
use crate::pairing::Pairing;
use crate::stats::Ecdf;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use zeek_lite::{ConnRecord, DnsTransaction};

/// One house's slice of the analysis.
#[derive(Debug)]
pub struct HouseReport {
    /// The house's (NAT) address.
    pub addr: Ipv4Addr,
    /// Class mix of the house's connections.
    pub classes: ClassCounts,
    /// DNS lookups issued by the house.
    pub lookups: usize,
    /// Total bytes across the house's application connections.
    pub bytes: u64,
    /// Blocked-lookup delays (ms) for the house's SC∪R connections.
    pub blocked_delay_ms: Ecdf,
}

impl HouseReport {
    /// Share of this house's connections that block on DNS, percent.
    pub fn blocked_share_pct(&self) -> f64 {
        self.classes.blocked_share_pct()
    }
}

/// Build a per-house report table, sorted by connection count descending.
pub fn house_reports(
    conns: &[ConnRecord],
    dns: &[DnsTransaction],
    pairing: &Pairing,
    classes: &[ConnClass],
) -> Vec<HouseReport> {
    struct Acc {
        classes: ClassCounts,
        lookups: usize,
        bytes: u64,
        delays: Vec<f64>,
    }
    let mut by_house: HashMap<Ipv4Addr, Acc> = HashMap::new();
    fn acc(m: &mut HashMap<Ipv4Addr, Acc>, a: Ipv4Addr) -> &mut Acc {
        m.entry(a).or_insert_with(|| Acc {
            classes: ClassCounts::default(),
            lookups: 0,
            bytes: 0,
            delays: Vec::new(),
        })
    }
    for txn in dns {
        acc(&mut by_house, txn.client).lookups += 1;
    }
    for (pair, class) in pairing.pairs.iter().zip(classes) {
        let conn = &conns[pair.conn];
        let a = acc(&mut by_house, conn.id.orig_addr);
        match class {
            ConnClass::NoDns => a.classes.no_dns += 1,
            ConnClass::LocalCache => a.classes.local_cache += 1,
            ConnClass::Prefetched => a.classes.prefetched += 1,
            ConnClass::SharedCache => a.classes.shared_cache += 1,
            ConnClass::Resolution => a.classes.resolution += 1,
        }
        a.bytes += conn.total_bytes();
        if matches!(class, ConnClass::SharedCache | ConnClass::Resolution) {
            if let Some(di) = pair.dns {
                if let Some(rtt) = dns[di].rtt {
                    a.delays.push(rtt.as_millis_f64());
                }
            }
        }
    }
    let mut reports: Vec<HouseReport> = by_house
        // lint: allow(no-map-iteration): sorted just below under a total order
        .into_iter()
        .map(|(addr, a)| HouseReport {
            addr,
            classes: a.classes,
            lookups: a.lookups,
            bytes: a.bytes,
            blocked_delay_ms: Ecdf::new(a.delays),
        })
        .collect();
    reports.sort_by(|x, y| y.classes.total().cmp(&x.classes.total()).then(x.addr.cmp(&y.addr)));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use zeek_lite::{Answer, ConnState, Duration, FiveTuple, Proto, Timestamp};

    const H1: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const H2: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 2);
    const RES: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const S: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);

    fn txn(ts_ms: u64, client: Ipv4Addr) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client,
            resolver: RES,
            trans_id: 1,
            query: "x.example.com".into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(4)),
            answers: vec![Answer::addr(S, 300)],
        }
    }

    fn conn(ts_ms: u64, client: Ipv4Addr, bytes: u64) -> ConnRecord {
        ConnRecord {
            uid: ts_ms,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: client,
                orig_port: 50_000,
                resp_addr: S,
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(500),
            orig_bytes: 10,
            resp_bytes: bytes,
            orig_pkts: 2,
            resp_pkts: 4,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: Some("ssl"),
        }
    }

    #[test]
    fn splits_by_house() {
        let dns = vec![txn(0, H1), txn(0, H2)];
        let conns = vec![
            conn(6, H1, 1_000),   // blocked -> SC/R for H1
            conn(30_000, H1, 50), // reuse -> LC for H1
            conn(6, H2, 2_000),   // blocked for H2
        ];
        let pairing = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let classes = crate::classify::classify(
            &zeek_lite::DnsColumns::from_rows(&dns),
            &pairing,
            Duration::from_millis(100),
            &HashMap::new(),
            Duration::from_millis(5),
        );
        let reports = house_reports(&conns, &dns, &pairing, &classes);
        assert_eq!(reports.len(), 2);
        // H1 has more conns, so it sorts first.
        assert_eq!(reports[0].addr, H1);
        assert_eq!(reports[0].classes.total(), 2);
        assert_eq!(reports[0].lookups, 1);
        assert_eq!(reports[0].bytes, 1_000 + 10 + 50 + 10);
        assert_eq!(reports[0].blocked_delay_ms.len(), 1);
        assert_eq!(reports[1].addr, H2);
        assert_eq!(reports[1].classes.shared_cache + reports[1].classes.resolution, 1);
    }

    #[test]
    fn empty_inputs() {
        let pairing = Pairing::build(&[], &[], PairingPolicy::MostRecent);
        let reports = house_reports(&[], &[], &pairing, &[]);
        assert!(reports.is_empty());
    }
}
