//! Connection classification (paper §5, Table 2) and the §5.1/§5.2
//! in-text analyses.

use crate::pairing::Pairing;
use crate::stats::{pct, Ecdf};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use zeek_lite::{ConnColumns, ConnRecord, DnsColumns, Duration};

/// The paper's five connection classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnClass {
    /// No DNS information involved.
    NoDns,
    /// Local-cache information, previously used.
    LocalCache,
    /// Previously-unused (speculative) information, used >100 ms later.
    Prefetched,
    /// Blocked; answered from the shared resolver's cache.
    SharedCache,
    /// Blocked; required authoritative resolution.
    Resolution,
}

impl ConnClass {
    /// The paper's symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ConnClass::NoDns => "N",
            ConnClass::LocalCache => "LC",
            ConnClass::Prefetched => "P",
            ConnClass::SharedCache => "SC",
            ConnClass::Resolution => "R",
        }
    }

    /// The paper's description (Table 2's second column).
    pub fn description(self) -> &'static str {
        match self {
            ConnClass::NoDns => "No DNS",
            ConnClass::LocalCache => "Local Cache",
            ConnClass::Prefetched => "Prefetched",
            ConnClass::SharedCache => "Shared Resolver Cache",
            ConnClass::Resolution => "Requires Resolution",
        }
    }

    /// All five classes in Table 2's order.
    pub fn all() -> [ConnClass; 5] {
        [
            ConnClass::NoDns,
            ConnClass::LocalCache,
            ConnClass::Prefetched,
            ConnClass::SharedCache,
            ConnClass::Resolution,
        ]
    }
}

/// Table 2: counts per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// `N` count.
    pub no_dns: usize,
    /// `LC` count.
    pub local_cache: usize,
    /// `P` count.
    pub prefetched: usize,
    /// `SC` count.
    pub shared_cache: usize,
    /// `R` count.
    pub resolution: usize,
}

impl ClassCounts {
    /// Total connections.
    pub fn total(&self) -> usize {
        self.no_dns + self.local_cache + self.prefetched + self.shared_cache + self.resolution
    }

    /// Count for one class.
    pub fn get(&self, class: ConnClass) -> usize {
        match class {
            ConnClass::NoDns => self.no_dns,
            ConnClass::LocalCache => self.local_cache,
            ConnClass::Prefetched => self.prefetched,
            ConnClass::SharedCache => self.shared_cache,
            ConnClass::Resolution => self.resolution,
        }
    }

    /// Percentage for one class (Table 2's last column).
    pub fn share_pct(&self, class: ConnClass) -> f64 {
        pct(self.get(class), self.total())
    }

    /// Shared-cache hit rate among blocked connections
    /// (SC / (SC + R); the paper reports 62.6 %).
    pub fn shared_hit_rate(&self) -> f64 {
        let blocked = self.shared_cache + self.resolution;
        if blocked == 0 {
            0.0
        } else {
            self.shared_cache as f64 / blocked as f64
        }
    }

    /// Share of connections that block on DNS (SC + R; paper: 42.1 %).
    pub fn blocked_share_pct(&self) -> f64 {
        pct(self.shared_cache + self.resolution, self.total())
    }
}

/// How the SC/R resolver thresholds are derived (paper §5.3): anchor on
/// the minimum observed duration per resolver (≈ the network RTT), scale
/// and pad slightly, and never go below the floor used for unpopular
/// resolvers.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdRule {
    /// Minimum lookups a resolver needs for its own threshold.
    pub min_lookups: usize,
    /// Multiplier on the minimum duration.
    pub mult: f64,
    /// Additive pad, milliseconds.
    pub add_ms: f64,
    /// Default/floor threshold, milliseconds (the paper's 5 ms).
    pub floor_ms: f64,
}

impl Default for ThresholdRule {
    fn default() -> Self {
        ThresholdRule { min_lookups: 1_000, mult: 1.5, add_ms: 2.0, floor_ms: 5.0 }
    }
}

/// Compute per-resolver SC/R thresholds from the lookup-duration
/// distributions (paper §5.3). Scans the resolver and rtt columns.
pub fn resolver_thresholds(dns: &DnsColumns, rule: ThresholdRule) -> HashMap<Ipv4Addr, Duration> {
    let mut by_resolver: HashMap<Ipv4Addr, (f64, usize)> = HashMap::new();
    for (resolver, rtt) in dns.resolver.iter().zip(&dns.rtt) {
        if let Some(rtt) = rtt {
            let e = by_resolver.entry(*resolver).or_insert((f64::INFINITY, 0));
            e.0 = e.0.min(rtt.as_millis_f64());
            e.1 += 1;
        }
    }
    by_resolver
        // lint: allow(no-map-iteration): map-to-map transform, no order reaches output
        .into_iter()
        .filter(|(_, (_, n))| *n >= rule.min_lookups)
        .map(|(addr, (min_ms, _))| {
            let thr = (min_ms * rule.mult + rule.add_ms).max(rule.floor_ms).ceil();
            (addr, Duration::from_secs_f64(thr / 1e3))
        })
        .collect()
}

/// Classify every analysed connection. `thresholds` comes from
/// [`resolver_thresholds`]; resolvers missing from it use the rule's floor.
pub fn classify(
    dns: &DnsColumns,
    pairing: &Pairing,
    block_threshold: Duration,
    thresholds: &HashMap<Ipv4Addr, Duration>,
    floor: Duration,
) -> Vec<ConnClass> {
    pairing
        .pairs
        .iter()
        .map(|p| classify_pair(p, dns, block_threshold, thresholds, floor))
        .collect()
}

/// The per-connection classification rule (paper §4): unpaired → N;
/// gap beyond the blocking threshold → P/LC by first use; blocked →
/// SC/R by the paired lookup's duration against its resolver threshold.
/// Reads only the resolver and rtt columns of the paired lookup.
fn classify_pair(
    p: &crate::pairing::PairedConn,
    dns: &DnsColumns,
    block_threshold: Duration,
    thresholds: &HashMap<Ipv4Addr, Duration>,
    floor: Duration,
) -> ConnClass {
    let Some(di) = p.dns else { return ConnClass::NoDns };
    let gap = p.gap.expect("paired conns have gaps");
    if gap > block_threshold {
        if p.first_use {
            ConnClass::Prefetched
        } else {
            ConnClass::LocalCache
        }
    } else {
        let thr = thresholds.get(&dns.resolver[di]).copied().unwrap_or(floor);
        let dur = dns.rtt[di].unwrap_or(Duration::ZERO);
        if dur <= thr {
            ConnClass::SharedCache
        } else {
            ConnClass::Resolution
        }
    }
}

/// [`classify`] fanned out over worker threads: contiguous chunks of the
/// pairing are classified independently and concatenated in order. Each
/// pair's class is a pure function of that pair, so the result is
/// identical to the sequential call for every thread count.
pub fn classify_parallel(
    threads: usize,
    dns: &DnsColumns,
    pairing: &Pairing,
    block_threshold: Duration,
    thresholds: &HashMap<Ipv4Addr, Duration>,
    floor: Duration,
) -> Vec<ConnClass> {
    let n = pairing.pairs.len();
    let workers = xkit::par::resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        return classify(dns, pairing, block_threshold, thresholds, floor);
    }
    let chunks: Vec<&[crate::pairing::PairedConn]> =
        pairing.pairs.chunks(n.div_ceil(workers)).collect();
    xkit::par::par_map(threads, chunks, |_, chunk| {
        chunk
            .iter()
            .map(|p| classify_pair(p, dns, block_threshold, thresholds, floor))
            .collect::<Vec<ConnClass>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Tally classes into Table 2's counts.
pub fn count_classes(classes: &[ConnClass]) -> ClassCounts {
    let mut c = ClassCounts::default();
    for class in classes {
        match class {
            ConnClass::NoDns => c.no_dns += 1,
            ConnClass::LocalCache => c.local_cache += 1,
            ConnClass::Prefetched => c.prefetched += 1,
            ConnClass::SharedCache => c.shared_cache += 1,
            ConnClass::Resolution => c.resolution += 1,
        }
    }
    c
}

/// §5.1: the anatomy of the no-DNS connections.
#[derive(Debug, Clone)]
pub struct NoDnsBreakdown {
    /// Total `N` connections.
    pub total: usize,
    /// Of those, both ports ≥ 1024 (P2P hallmark; paper: 81.6 %).
    pub both_high_ports: usize,
    /// Reserved-port `N` connections grouped by (address, port), sorted by
    /// count descending — the paper's hard-coded NTP/AlarmNet stories.
    pub reserved_port_endpoints: Vec<((Ipv4Addr, u16), usize)>,
    /// Connections on the DoT port anywhere in the trace (paper: none).
    pub dot_port_conns: usize,
    /// Share of *all* application connections that are both unpaired and
    /// not high-high (the paper's ≤1.3 % possibly-encrypted bound).
    pub unpaired_not_p2p_share_pct: f64,
}

/// Compute the §5.1 breakdown.
pub fn no_dns_breakdown(
    conns: &[ConnRecord],
    pairing: &Pairing,
    classes: &[ConnClass],
) -> NoDnsBreakdown {
    let mut total = 0usize;
    let mut both_high = 0usize;
    let mut reserved: HashMap<(Ipv4Addr, u16), usize> = HashMap::new();
    let mut unpaired_not_p2p = 0usize;
    let mut dot = 0usize;
    for (pair, class) in pairing.pairs.iter().zip(classes) {
        let conn = &conns[pair.conn];
        if conn.id.resp_port == 853 || conn.id.orig_port == 853 {
            dot += 1;
        }
        if *class != ConnClass::NoDns {
            continue;
        }
        total += 1;
        if conn.id.both_high_ports() {
            both_high += 1;
        } else {
            *reserved.entry((conn.id.resp_addr, conn.id.resp_port)).or_default() += 1;
            unpaired_not_p2p += 1;
        }
    }
    // lint: allow(no-map-iteration): sorted just below under a total order
    let mut reserved_port_endpoints: Vec<_> = reserved.into_iter().collect();
    reserved_port_endpoints.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    NoDnsBreakdown {
        total,
        both_high_ports: both_high,
        reserved_port_endpoints,
        dot_port_conns: dot,
        unpaired_not_p2p_share_pct: pct(unpaired_not_p2p, pairing.pairs.len()),
    }
}

/// §5.2: TTL violations and prefetch efficacy.
#[derive(Debug)]
pub struct TtlStats {
    /// Share of LC connections using expired records (paper: 22.2 %).
    pub lc_violation_share_pct: f64,
    /// Share of P connections using expired records (paper: 12.4 %).
    pub p_violation_share_pct: f64,
    /// Distribution of how stale violated records were, seconds
    /// (paper: 82 % > 30 s, median 890 s, p90 ≈ 19 ks).
    pub violation_staleness_secs: Ecdf,
    /// Median lookup-to-use gap for P connections, seconds (paper: 310 s).
    pub p_use_gap_median_secs: Option<f64>,
    /// Median lookup-to-use gap for LC connections, seconds (paper: 1033 s).
    pub lc_use_gap_median_secs: Option<f64>,
    /// Lookups never used by any connection (paper: 3.1 M / 37.8 %).
    pub unused_lookups: usize,
    /// Unused share of eligible lookups.
    pub unused_share_pct: f64,
    /// Treating unused lookups as speculative: the share of speculative
    /// lookups ultimately used (paper: 22.3 %).
    pub speculative_used_share_pct: f64,
}

/// Compute the §5.2 statistics. Scans the conn ts column and the dns
/// expiry column.
pub fn ttl_stats(
    conns: &ConnColumns,
    dns: &DnsColumns,
    pairing: &Pairing,
    classes: &[ConnClass],
) -> TtlStats {
    let mut lc = (0usize, 0usize); // (violations, total)
    let mut p = (0usize, 0usize);
    let mut staleness = Vec::new();
    let mut p_gaps = Vec::new();
    let mut lc_gaps = Vec::new();
    let mut p_first_lookups = std::collections::HashSet::new();
    for (pair, class) in pairing.pairs.iter().zip(classes) {
        let counters = match class {
            ConnClass::LocalCache => &mut lc,
            ConnClass::Prefetched => &mut p,
            _ => continue,
        };
        counters.1 += 1;
        let di = pair.dns.expect("LC/P are paired");
        if *class == ConnClass::Prefetched {
            p_first_lookups.insert(di);
            p_gaps.push(pair.gap.unwrap().as_secs_f64());
        } else {
            lc_gaps.push(pair.gap.unwrap().as_secs_f64());
        }
        if pair.expired {
            counters.0 += 1;
            if let Some(expires) = dns.expires[di] {
                staleness.push(conns.ts[pair.conn].since(expires).as_secs_f64());
            }
        }
    }
    let (unused_lookups, unused_share) = pairing.unused_lookups(dns);
    let speculative_total = unused_lookups + p_first_lookups.len();
    TtlStats {
        lc_violation_share_pct: pct(lc.0, lc.1),
        p_violation_share_pct: pct(p.0, p.1),
        violation_staleness_secs: Ecdf::new(staleness),
        p_use_gap_median_secs: Ecdf::new(p_gaps).median(),
        lc_use_gap_median_secs: Ecdf::new(lc_gaps).median(),
        unused_lookups,
        unused_share_pct: unused_share * 100.0,
        speculative_used_share_pct: pct(p_first_lookups.len(), speculative_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use zeek_lite::{Answer, ConnState, DnsTransaction, FiveTuple, Proto, Timestamp};

    const HOUSE: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
    const RES_FAST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const SERVER: Ipv4Addr = Ipv4Addr::new(104, 16, 0, 1);

    fn txn(ts_ms: u64, rtt_ms: u64, ttl: u32) -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_millis(ts_ms),
            client: HOUSE,
            resolver: RES_FAST,
            trans_id: 1,
            query: "www.example.com".into(),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(rtt_ms)),
            answers: vec![Answer::addr(SERVER, ttl)],
        }
    }

    fn conn(ts_ms: u64, dst: Ipv4Addr, orig_port: u16, resp_port: u16) -> ConnRecord {
        ConnRecord {
            uid: ts_ms,
            ts: Timestamp::from_millis(ts_ms),
            id: FiveTuple {
                orig_addr: HOUSE,
                orig_port,
                resp_addr: dst,
                resp_port,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(400),
            orig_bytes: 10,
            resp_bytes: 10,
            orig_pkts: 2,
            resp_pkts: 2,
            state: ConnState::SF,
            history: zeek_lite::History::new(),
            service: None,
        }
    }

    fn run(
        conns: &[ConnRecord],
        dns: &[DnsTransaction],
    ) -> (Pairing, Vec<ConnClass>, HashMap<Ipv4Addr, Duration>) {
        let pairing = Pairing::build(conns, dns, PairingPolicy::MostRecent);
        let dns_cols = DnsColumns::from_rows(dns);
        let rule = ThresholdRule { min_lookups: 1, ..ThresholdRule::default() };
        let thr = resolver_thresholds(&dns_cols, rule);
        let classes = classify(
            &dns_cols,
            &pairing,
            Duration::from_millis(100),
            &thr,
            Duration::from_millis(5),
        );
        (pairing, classes, thr)
    }

    #[test]
    fn blocked_fast_lookup_is_sc() {
        // Two lookups so the min anchors at 4 ms; the 4 ms lookup's conn
        // is SC, and a much slower one lands R.
        let dns = vec![txn(0, 4, 300), txn(10_000, 80, 300)];
        let conns = vec![conn(10, SERVER, 50_000, 443), conn(10_085, SERVER, 50_001, 443)];
        let (_, classes, thr) = run(&conns, &dns);
        // Threshold: ceil(4 * 1.3 + 2) = 8 ms.
        assert_eq!(thr[&RES_FAST], Duration::from_millis(8));
        assert_eq!(classes[0], ConnClass::SharedCache);
        assert_eq!(classes[1], ConnClass::Resolution);
    }

    #[test]
    fn non_blocked_first_use_is_prefetched_then_lc() {
        let dns = vec![txn(0, 5, 3_600)];
        let conns = vec![
            conn(30_000, SERVER, 50_000, 443), // 30 s later: first use → P
            conn(60_000, SERVER, 50_001, 443), // second use → LC
        ];
        let (_, classes, _) = run(&conns, &dns);
        assert_eq!(classes[0], ConnClass::Prefetched);
        assert_eq!(classes[1], ConnClass::LocalCache);
    }

    #[test]
    fn unpaired_is_no_dns() {
        let dns = vec![txn(0, 5, 300)];
        let conns = vec![conn(10, Ipv4Addr::new(9, 9, 9, 9), 51_413, 51_413)];
        let (_, classes, _) = run(&conns, &dns);
        assert_eq!(classes[0], ConnClass::NoDns);
    }

    #[test]
    fn class_counts_and_shares() {
        let classes = vec![
            ConnClass::NoDns,
            ConnClass::LocalCache,
            ConnClass::LocalCache,
            ConnClass::SharedCache,
            ConnClass::Resolution,
        ];
        let c = count_classes(&classes);
        assert_eq!(c.total(), 5);
        assert_eq!(c.share_pct(ConnClass::LocalCache), 40.0);
        assert_eq!(c.shared_hit_rate(), 0.5);
        assert_eq!(c.blocked_share_pct(), 40.0);
    }

    #[test]
    fn threshold_rule_respects_floor_and_min_lookups() {
        let dns = DnsColumns::from_rows(&[txn(0, 1, 300)]); // min 1 ms → raw thr 3.3 → floor 5
        let rule = ThresholdRule { min_lookups: 1, ..ThresholdRule::default() };
        let thr = resolver_thresholds(&dns, rule);
        assert_eq!(thr[&RES_FAST], Duration::from_millis(5));
        // Below min_lookups: resolver gets no entry.
        let thr2 = resolver_thresholds(&dns, ThresholdRule::default());
        assert!(thr2.is_empty());
    }

    #[test]
    fn no_dns_breakdown_reports_ports() {
        let dns = vec![txn(0, 5, 300)];
        let conns = vec![
            conn(10, Ipv4Addr::new(58, 1, 2, 3), 51_000, 52_000), // p2p-ish
            conn(20, Ipv4Addr::new(192, 0, 32, 10), 50_000, 123), // hard-coded NTP
            conn(30, Ipv4Addr::new(192, 0, 32, 10), 50_001, 123),
        ];
        let pairing = Pairing::build(&conns, &dns, PairingPolicy::MostRecent);
        let classes = vec![ConnClass::NoDns; 3];
        let b = no_dns_breakdown(&conns, &pairing, &classes);
        assert_eq!(b.total, 3);
        assert_eq!(b.both_high_ports, 1);
        assert_eq!(b.reserved_port_endpoints[0], ((Ipv4Addr::new(192, 0, 32, 10), 123), 2));
        assert_eq!(b.dot_port_conns, 0);
    }

    #[test]
    fn ttl_stats_capture_violations() {
        // TTL 1 s lookup; first conn fresh (P), later conns stale.
        let dns = vec![txn(0, 5, 1)];
        let conns = vec![
            conn(500, SERVER, 50_000, 443),    // fresh, first use → P
            conn(40_000, SERVER, 50_001, 443), // expired → LC violation
        ];
        let (pairing, classes, _) = run(&conns, &dns);
        assert_eq!(classes, vec![ConnClass::Prefetched, ConnClass::LocalCache]);
        let stats = ttl_stats(
            &ConnColumns::from_rows(&conns),
            &DnsColumns::from_rows(&dns),
            &pairing,
            &classes,
        );
        assert_eq!(stats.lc_violation_share_pct, 100.0);
        assert_eq!(stats.p_violation_share_pct, 0.0);
        assert_eq!(stats.violation_staleness_secs.len(), 1);
        // Staleness: conn at 40 s, expiry at 0 + 5 ms + 1 s.
        let s = stats.violation_staleness_secs.samples()[0];
        assert!((s - 38.995).abs() < 1e-6, "staleness {s}");
        assert_eq!(stats.unused_lookups, 0);
        assert_eq!(stats.speculative_used_share_pct, 100.0);
    }
}
