//! Property tests for the analysis pipeline: pairing and classification
//! invariants over randomly generated logs.

use dns_context::{classify, pairing::Pairing, Analysis, AnalysisConfig, ConnClass, PairingPolicy};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use zeek_lite::{
    Answer, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple, Logs, Proto, Timestamp,
};

/// A tiny world so pairings actually collide: few clients, few servers.
fn client(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 77, 0, 1 + (i % 3))
}
fn server(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(104, 16, 0, 1 + (i % 4))
}
const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);

#[derive(Debug, Clone)]
struct World {
    dns: Vec<DnsTransaction>,
    conns: Vec<ConnRecord>,
}

fn arb_world() -> impl Strategy<Value = World> {
    let txns = proptest::collection::vec(
        (0u64..600_000, any::<u8>(), any::<u8>(), 1u32..600, 1u64..60),
        0..25,
    );
    let conns = proptest::collection::vec(
        (0u64..900_000, any::<u8>(), any::<u8>(), 1u64..1_000_000),
        0..40,
    );
    (txns, conns).prop_map(|(txns, conns)| {
        let dns: Vec<DnsTransaction> = txns
            .into_iter()
            .enumerate()
            .map(|(i, (ts_ms, c, s, ttl, rtt_ms))| DnsTransaction {
                ts: Timestamp::from_millis(ts_ms),
                client: client(c),
                resolver: RESOLVER,
                trans_id: i as u16,
                query: format!("name-{}.example", s % 4),
                qtype: dns_wire::RrType::A,
                rcode: Some(dns_wire::Rcode::NoError),
                rtt: Some(Duration::from_millis(rtt_ms)),
                answers: vec![Answer::addr(server(s), ttl)],
            })
            .collect();
        let conns: Vec<ConnRecord> = conns
            .into_iter()
            .enumerate()
            .map(|(i, (ts_ms, c, s, bytes))| ConnRecord {
                uid: i as u64,
                ts: Timestamp::from_millis(ts_ms),
                id: FiveTuple {
                    orig_addr: client(c),
                    orig_port: 40_000 + i as u16,
                    resp_addr: server(s),
                    resp_port: 443,
                    proto: Proto::Tcp,
                },
                duration: Duration::from_millis(bytes % 60_000),
                orig_bytes: 100,
                resp_bytes: bytes,
                orig_pkts: 4,
                resp_pkts: 8,
                state: ConnState::SF,
                history: String::new(),
                service: Some("ssl"),
            })
            .collect();
        let mut logs = Logs { conns, dns, stats: Default::default() };
        logs.sort();
        World { dns: logs.dns, conns: logs.conns }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pairing invariants: a paired lookup completed before the conn
    /// started, was issued by the same client, and contains the conn's
    /// destination; under MostRecent no *newer* live candidate exists.
    #[test]
    fn pairing_invariants(w in arb_world()) {
        let p = Pairing::build(&w.conns, &w.dns, PairingPolicy::MostRecent);
        prop_assert_eq!(p.pairs.len(), w.conns.len());
        for pair in &p.pairs {
            let conn = &w.conns[pair.conn];
            let Some(di) = pair.dns else {
                prop_assert_eq!(pair.gap, None);
                continue;
            };
            let txn = &w.dns[di];
            let completed = txn.completed_at().unwrap();
            prop_assert_eq!(txn.client, conn.id.orig_addr);
            prop_assert!(completed <= conn.ts, "lookup completed after conn start");
            prop_assert!(txn.addrs().any(|a| a == conn.id.resp_addr));
            prop_assert_eq!(pair.gap, Some(conn.ts.since(completed)));
            let expired_truth = txn.expires_at().unwrap() <= conn.ts;
            prop_assert_eq!(pair.expired, expired_truth);
            if !pair.expired {
                // Most recent among live candidates: no other live lookup
                // for this (client, addr) completed later.
                for other in &w.dns {
                    if other.client == conn.id.orig_addr
                        && other.addrs().any(|a| a == conn.id.resp_addr)
                    {
                        let (Some(oc), Some(oe)) = (other.completed_at(), other.expires_at()) else {
                            continue;
                        };
                        if oc <= conn.ts && oe > conn.ts {
                            prop_assert!(oc <= completed, "a newer live candidate existed");
                        }
                    }
                }
            }
        }
    }

    /// Exactly one first-use conn per used lookup; unused accounting adds up.
    #[test]
    fn first_use_is_unique(w in arb_world()) {
        let p = Pairing::build(&w.conns, &w.dns, PairingPolicy::MostRecent);
        let mut firsts = std::collections::HashMap::new();
        for pair in &p.pairs {
            if let Some(di) = pair.dns {
                if pair.first_use {
                    prop_assert!(firsts.insert(di, pair.conn).is_none(), "two first uses");
                }
            }
        }
        let used: std::collections::HashSet<_> =
            p.pairs.iter().filter_map(|x| x.dns).collect();
        prop_assert_eq!(firsts.len(), used.len());
        let (unused, share) = p.unused_lookups(&w.dns);
        let eligible = w.dns.iter().filter(|t| t.has_addrs() && t.rtt.is_some()).count();
        prop_assert_eq!(unused, eligible - used.len());
        prop_assert!((0.0..=1.0).contains(&share));
    }

    /// Classification is total and consistent with the blocking threshold.
    #[test]
    fn classification_partitions(w in arb_world()) {
        let logs = Logs { conns: w.conns.clone(), dns: w.dns.clone(), stats: Default::default() };
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let a = Analysis::run(&logs, cfg.clone());
        prop_assert_eq!(a.classes.len(), a.pairing.pairs.len());
        let counts = a.class_counts();
        prop_assert_eq!(counts.total(), a.pairing.app_conn_count());
        for (pair, class) in a.pairing.pairs.iter().zip(&a.classes) {
            match class {
                ConnClass::NoDns => prop_assert!(pair.dns.is_none()),
                ConnClass::SharedCache | ConnClass::Resolution => {
                    prop_assert!(pair.gap.unwrap() <= cfg.block_threshold);
                }
                ConnClass::LocalCache => {
                    prop_assert!(pair.gap.unwrap() > cfg.block_threshold);
                    prop_assert!(!pair.first_use);
                }
                ConnClass::Prefetched => {
                    prop_assert!(pair.gap.unwrap() > cfg.block_threshold);
                    prop_assert!(pair.first_use);
                }
            }
        }
    }

    /// Raising the blocking threshold never decreases the blocked share.
    #[test]
    fn blocked_share_monotone_in_threshold(w in arb_world()) {
        let logs = Logs { conns: w.conns, dns: w.dns, stats: Default::default() };
        let mut last = -1.0f64;
        for ms in [10u64, 50, 100, 500, 5_000] {
            let mut cfg = AnalysisConfig::default();
            cfg.block_threshold = Duration::from_millis(ms);
            cfg.threshold_rule.min_lookups = 1;
            let share = Analysis::run(&logs, cfg).class_counts().blocked_share_pct();
            prop_assert!(share + 1e-9 >= last, "blocked share fell: {share} < {last} at {ms}ms");
            last = share;
        }
    }

    /// Raising the SC/R duration threshold never decreases the SC count.
    #[test]
    fn sc_monotone_in_resolver_threshold(w in arb_world()) {
        let p = Pairing::build(&w.conns, &w.dns, PairingPolicy::MostRecent);
        let mut last = -1i64;
        for floor_ms in [1u64, 5, 20, 100, 10_000] {
            let classes = classify::classify(
                &w.dns,
                &p,
                Duration::from_millis(100),
                &Default::default(),
                Duration::from_millis(floor_ms),
            );
            let sc = classify::count_classes(&classes).shared_cache as i64;
            prop_assert!(sc >= last);
            last = sc;
        }
    }
}
