//! Randomized tests for the analysis pipeline: pairing and
//! classification invariants over generated logs, driven by fixed
//! `xkit::rng` streams so every run exercises the same cases.

use dns_context::{classify, pairing::Pairing, Analysis, AnalysisConfig, ConnClass, PairingPolicy};
use std::net::Ipv4Addr;
use xkit::rng::{RngExt, SeedableRng, StdRng};
use zeek_lite::{
    Answer, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple, Logs, Proto, Timestamp,
};

const CASES: usize = 256;

fn rng(label: u64) -> StdRng {
    StdRng::seed_from_u64(0xD5C_7387 ^ label)
}

/// A tiny world so pairings actually collide: few clients, few servers.
fn client(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 77, 0, 1 + (i % 3))
}
fn server(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(104, 16, 0, 1 + (i % 4))
}
const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);

#[derive(Debug, Clone)]
struct World {
    dns: Vec<DnsTransaction>,
    conns: Vec<ConnRecord>,
}

fn gen_world(r: &mut StdRng) -> World {
    let dns: Vec<DnsTransaction> = (0..r.random_range(0..25usize))
        .map(|i| DnsTransaction {
            ts: Timestamp::from_millis(r.random_range(0u64..600_000)),
            client: client(r.random::<u8>()),
            resolver: RESOLVER,
            trans_id: i as u16,
            query: format!("name-{}.example", r.random::<u8>() % 4),
            qtype: dns_wire::RrType::A,
            rcode: Some(dns_wire::Rcode::NoError),
            rtt: Some(Duration::from_millis(r.random_range(1u64..60))),
            answers: vec![Answer::addr(server(r.random::<u8>()), r.random_range(1u32..600))],
        })
        .collect();
    let conns: Vec<ConnRecord> = (0..r.random_range(0..40usize))
        .map(|i| {
            let bytes = r.random_range(1u64..1_000_000);
            ConnRecord {
                uid: i as u64,
                ts: Timestamp::from_millis(r.random_range(0u64..900_000)),
                id: FiveTuple {
                    orig_addr: client(r.random::<u8>()),
                    orig_port: 40_000 + i as u16,
                    resp_addr: server(r.random::<u8>()),
                    resp_port: 443,
                    proto: Proto::Tcp,
                },
                duration: Duration::from_millis(bytes % 60_000),
                orig_bytes: 100,
                resp_bytes: bytes,
                orig_pkts: 4,
                resp_pkts: 8,
                state: ConnState::SF,
                history: zeek_lite::History::new(),
                service: Some("ssl"),
            }
        })
        .collect();
    let mut logs = Logs { conns, dns, ..Default::default() };
    logs.sort();
    World { dns: logs.dns, conns: logs.conns }
}

/// Pairing invariants: a paired lookup completed before the conn
/// started, was issued by the same client, and contains the conn's
/// destination; under MostRecent no *newer* live candidate exists.
#[test]
fn pairing_invariants() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let w = gen_world(&mut r);
        let p = Pairing::build(&w.conns, &w.dns, PairingPolicy::MostRecent);
        assert_eq!(p.pairs.len(), w.conns.len());
        for pair in &p.pairs {
            let conn = &w.conns[pair.conn];
            let Some(di) = pair.dns else {
                assert_eq!(pair.gap, None);
                continue;
            };
            let txn = &w.dns[di];
            let completed = txn.completed_at().unwrap();
            assert_eq!(txn.client, conn.id.orig_addr);
            assert!(completed <= conn.ts, "lookup completed after conn start");
            assert!(txn.addrs().any(|a| a == conn.id.resp_addr));
            assert_eq!(pair.gap, Some(conn.ts.since(completed)));
            let expired_truth = txn.expires_at().unwrap() <= conn.ts;
            assert_eq!(pair.expired, expired_truth);
            if !pair.expired {
                // Most recent among live candidates: no other live lookup
                // for this (client, addr) completed later.
                for other in &w.dns {
                    if other.client == conn.id.orig_addr
                        && other.addrs().any(|a| a == conn.id.resp_addr)
                    {
                        let (Some(oc), Some(oe)) = (other.completed_at(), other.expires_at())
                        else {
                            continue;
                        };
                        if oc <= conn.ts && oe > conn.ts {
                            assert!(oc <= completed, "a newer live candidate existed");
                        }
                    }
                }
            }
        }
    }
}

/// Exactly one first-use conn per used lookup; unused accounting adds up.
#[test]
fn first_use_is_unique() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let w = gen_world(&mut r);
        let p = Pairing::build(&w.conns, &w.dns, PairingPolicy::MostRecent);
        let mut firsts = std::collections::HashMap::new();
        for pair in &p.pairs {
            if let Some(di) = pair.dns {
                if pair.first_use {
                    assert!(firsts.insert(di, pair.conn).is_none(), "two first uses");
                }
            }
        }
        let used: std::collections::HashSet<_> = p.pairs.iter().filter_map(|x| x.dns).collect();
        assert_eq!(firsts.len(), used.len());
        let (unused, share) = p.unused_lookups(&zeek_lite::DnsColumns::from_rows(&w.dns));
        let eligible = w.dns.iter().filter(|t| t.has_addrs() && t.rtt.is_some()).count();
        assert_eq!(unused, eligible - used.len());
        assert!((0.0..=1.0).contains(&share));
    }
}

/// Classification is total and consistent with the blocking threshold.
#[test]
fn classification_partitions() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let w = gen_world(&mut r);
        let logs = Logs { conns: w.conns.clone(), dns: w.dns.clone(), ..Default::default() };
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.min_lookups = 1;
        let a = Analysis::run(&logs, cfg.clone());
        assert_eq!(a.classes.len(), a.pairing.pairs.len());
        let counts = a.class_counts();
        assert_eq!(counts.total(), a.pairing.app_conn_count());
        for (pair, class) in a.pairing.pairs.iter().zip(&a.classes) {
            match class {
                ConnClass::NoDns => assert!(pair.dns.is_none()),
                ConnClass::SharedCache | ConnClass::Resolution => {
                    assert!(pair.gap.unwrap() <= cfg.block_threshold);
                }
                ConnClass::LocalCache => {
                    assert!(pair.gap.unwrap() > cfg.block_threshold);
                    assert!(!pair.first_use);
                }
                ConnClass::Prefetched => {
                    assert!(pair.gap.unwrap() > cfg.block_threshold);
                    assert!(pair.first_use);
                }
            }
        }
    }
}

/// Raising the blocking threshold never decreases the blocked share.
#[test]
fn blocked_share_monotone_in_threshold() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let w = gen_world(&mut r);
        let logs = Logs { conns: w.conns, dns: w.dns, ..Default::default() };
        let mut last = -1.0f64;
        for ms in [10u64, 50, 100, 500, 5_000] {
            let mut cfg = AnalysisConfig::default();
            cfg.block_threshold = Duration::from_millis(ms);
            cfg.threshold_rule.min_lookups = 1;
            let share = Analysis::run(&logs, cfg).class_counts().blocked_share_pct();
            assert!(share + 1e-9 >= last, "blocked share fell: {share} < {last} at {ms}ms");
            last = share;
        }
    }
}

/// Raising the SC/R duration threshold never decreases the SC count.
#[test]
fn sc_monotone_in_resolver_threshold() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let w = gen_world(&mut r);
        let p = Pairing::build(&w.conns, &w.dns, PairingPolicy::MostRecent);
        let dns_cols = zeek_lite::DnsColumns::from_rows(&w.dns);
        let mut last = -1i64;
        for floor_ms in [1u64, 5, 20, 100, 10_000] {
            let classes = classify::classify(
                &dns_cols,
                &p,
                Duration::from_millis(100),
                &Default::default(),
                Duration::from_millis(floor_ms),
            );
            let sc = classify::count_classes(&classes).shared_cache as i64;
            assert!(sc >= last);
            last = sc;
        }
    }
}
