//! lintkit — the workspace's source-level invariants as tested code.
//!
//! A zero-dependency static-analysis engine that replaces the awk/grep
//! deny-lists `scripts/verify.sh` used to carry. A hand-written Rust
//! lexer ([`lexer::Lexed`]) classifies every byte of a source file as
//! code, comment, or literal — with nested block comments, raw strings,
//! and char-vs-lifetime disambiguation — and resolves `#[cfg(test)]`
//! scoping by actual brace extent, so a test module mid-file no longer
//! exempts everything after it (the old first-match awk bug). Rules
//! ([`rules::rules`]) are declarative: an id, a path scope, a matcher,
//! and a fix hint. Diagnostics are span-accurate (`file:line:col`) and
//! render both human-readable and as one canonical JSON document that
//! parses back through `xkit::obs::json`.
//!
//! Inline allowlisting: a comment on the flagged line containing
//! `lint: allow(<rule-id>)` suppresses that rule there; the pre-existing
//! `owned-fallback` markers keep working for `no-owned-copy-hotpath`.
//!
//! Entry points: [`lint_workspace`] walks a workspace root;
//! [`lint_file`] checks one in-memory file (the fixture tests use it).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use lexer::Lexed;
use rules::{Check, Rule};
use std::path::{Path, PathBuf};
use xkit::obs::json::Value;

/// One rule violation, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (see [`rules::rules`]).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What matched (needle or short description).
    pub what: String,
    /// The offending line, trimmed.
    pub excerpt: String,
    /// How to fix it.
    pub hint: String,
}

/// The result of a lint run.
pub struct Report {
    /// All violations, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Whether the run is clean.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one block per diagnostic plus a
    /// summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n    hint: {}\n",
                d.file, d.line, d.col, d.rule, d.what, d.excerpt, d.hint
            ));
        }
        if self.ok() {
            out.push_str(&format!("lint: clean ({} files checked)\n", self.files_checked));
        } else {
            out.push_str(&format!(
                "lint: {} violation(s) across {} file(s) ({} files checked)\n",
                self.diagnostics.len(),
                {
                    let mut files: Vec<&str> =
                        self.diagnostics.iter().map(|d| d.file.as_str()).collect();
                    files.dedup();
                    files.len()
                },
                self.files_checked
            ));
        }
        out
    }

    /// One canonical JSON document (parses back via `xkit::obs::json`).
    pub fn to_json(&self) -> String {
        let rule_table: Vec<Value> = rules::rules()
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("id".into(), Value::Str(r.id.into())),
                    ("desc".into(), Value::Str(r.desc.into())),
                ])
            })
            .collect();
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                Value::Obj(vec![
                    ("rule".into(), Value::Str(d.rule.clone())),
                    ("file".into(), Value::Str(d.file.clone())),
                    ("line".into(), Value::Num(d.line as f64)),
                    ("col".into(), Value::Num(d.col as f64)),
                    ("what".into(), Value::Str(d.what.clone())),
                    ("excerpt".into(), Value::Str(d.excerpt.clone())),
                    ("hint".into(), Value::Str(d.hint.clone())),
                ])
            })
            .collect();
        let counts: Vec<(String, Value)> = rules::rules()
            .iter()
            .map(|r| {
                let n = self.diagnostics.iter().filter(|d| d.rule == r.id).count();
                (r.id.to_string(), Value::Num(n as f64))
            })
            .collect();
        Value::Obj(vec![
            ("tool".into(), Value::Str("lintkit".into())),
            ("ok".into(), Value::Bool(self.ok())),
            ("files_checked".into(), Value::Num(self.files_checked as f64)),
            ("rules".into(), Value::Arr(rule_table)),
            ("counts".into(), Value::Obj(counts)),
            ("diagnostics".into(), Value::Arr(diags)),
        ])
        .render()
    }
}

/// Does `path` fall inside `rule`'s scope?
fn in_scope(rule: &Rule, path: &str) -> bool {
    let wanted_ext = match rule.check {
        Check::DepDenylist(_) => path == "Cargo.toml" || path.ends_with("/Cargo.toml"),
        Check::ShellScan => path.ends_with(".sh"),
        _ => path.ends_with(".rs"),
    };
    if !wanted_ext {
        return false;
    }
    let rooted = rule
        .scope
        .roots
        .iter()
        .any(|r| path == *r || path.starts_with(&format!("{r}/")));
    if !rooted {
        return false;
    }
    if rule.scope.exclude.iter().any(|e| path == *e || path.starts_with(e)) {
        return false;
    }
    if rule.scope.src_only && !path.contains("/src/") {
        return false;
    }
    if !rule.scope.include_tests && (path.starts_with("tests/") || path.contains("/tests/")) {
        return false;
    }
    true
}

/// Lint one in-memory file under its workspace-relative path. Pass
/// `only` to restrict to a single rule id.
pub fn lint_file(path: &str, src: &str, only: Option<&str>) -> Vec<Diagnostic> {
    let all = rules::rules();
    let active: Vec<&Rule> = all
        .iter()
        .filter(|r| only.is_none_or(|id| id == r.id))
        .filter(|r| in_scope(r, path))
        .collect();
    if active.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    // Non-Rust checks work on raw lines; Rust checks share one lex.
    let needs_lex = active
        .iter()
        .any(|r| matches!(r.check, Check::Needles(_) | Check::MapIteration | Check::UnsafeSafety));
    let lexed = if needs_lex { Some(Lexed::lex(src)) } else { None };

    for rule in active {
        match &rule.check {
            Check::Needles(needles) => {
                let lexed = lexed.as_ref().expect("lexed");
                for hit in rules::needle_hits(lexed, needles) {
                    push_rust_hit(&mut out, rule, lexed, path, hit.at, hit.what);
                }
            }
            Check::MapIteration => {
                let lexed = lexed.as_ref().expect("lexed");
                for hit in rules::map_iteration_hits(lexed) {
                    push_rust_hit(&mut out, rule, lexed, path, hit.at, hit.what);
                }
            }
            Check::UnsafeSafety => {
                let lexed = lexed.as_ref().expect("lexed");
                for hit in rules::unsafe_safety_hits(lexed) {
                    push_rust_hit(&mut out, rule, lexed, path, hit.at, hit.what);
                }
            }
            Check::DepDenylist(denied) => {
                for (off, what) in rules::dep_denylist_hits(src, denied) {
                    push_line_hit(&mut out, rule, src, path, off, what);
                }
            }
            Check::ShellScan => {
                for (off, what) in rules::shell_scan_hits(src) {
                    push_line_hit(&mut out, rule, src, path, off, what);
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
    });
    out
}

/// Append a hit from a lexed Rust file, applying test-scope and
/// allow-marker suppression.
fn push_rust_hit(
    out: &mut Vec<Diagnostic>,
    rule: &Rule,
    lexed: &Lexed<'_>,
    path: &str,
    at: usize,
    what: String,
) {
    if !rule.scope.include_tests && lexed.in_test(at) {
        return;
    }
    let (line, col) = lexed.line_col(at);
    // A marker suppresses the flagged line when it sits in a comment on
    // that line, or anywhere in the contiguous comment block directly
    // above it.
    let suppressed = |marker: &str| {
        if lexed.line_has_marker(line, marker) {
            return true;
        }
        let mut l = line;
        while l > 1 && lexed.line_text(l - 1).trim_start().starts_with("//") {
            l -= 1;
            if lexed.line_has_marker(l, marker) {
                return true;
            }
        }
        false
    };
    let allow = format!("lint: allow({})", rule.id);
    if suppressed(&allow) || rule.markers.iter().any(|m| suppressed(m)) {
        return;
    }
    out.push(Diagnostic {
        rule: rule.id.to_string(),
        file: path.to_string(),
        line,
        col,
        what,
        excerpt: excerpt(lexed.line_text(line)),
        hint: rule.hint.to_string(),
    });
}

/// Append a hit from a raw-line check (TOML / shell), where the allow
/// marker may appear anywhere on the line.
fn push_line_hit(
    out: &mut Vec<Diagnostic>,
    rule: &Rule,
    src: &str,
    path: &str,
    off: usize,
    what: String,
) {
    let line = src[..off].bytes().filter(|b| *b == b'\n').count() + 1;
    let line_start = src[..off].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let line_text = src[line_start..].lines().next().unwrap_or("");
    // For line-based files the allow marker may sit on the flagged line
    // or on its own line directly above (shell can't always carry a
    // trailing comment mid-command).
    let prev_text = src[..line_start.saturating_sub(1)]
        .rfind('\n')
        .map(|p| &src[p + 1..line_start.saturating_sub(1)])
        .unwrap_or(&src[..line_start.saturating_sub(1)]);
    let allow = format!("lint: allow({})", rule.id);
    if line_text.contains(&allow) || prev_text.contains(&allow) {
        return;
    }
    out.push(Diagnostic {
        rule: rule.id.to_string(),
        file: path.to_string(),
        line,
        col: off - line_start + 1,
        what,
        excerpt: excerpt(line_text),
        hint: rule.hint.to_string(),
    });
}

fn excerpt(line: &str) -> String {
    let t = line.trim();
    if t.len() > 160 {
        let mut end = 160;
        while !t.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &t[..end])
    } else {
        t.to_string()
    }
}

/// Lint a workspace: walks `crates/`, `tests/`, `scripts/`, and the
/// root `Cargo.toml` under `root`, applies every rule (or just `only`),
/// and returns the sorted report. IO problems are errors, not
/// diagnostics.
pub fn lint_workspace(root: &Path, only: Option<&str>) -> Result<Report, String> {
    if let Some(id) = only {
        if !rules::rules().iter().any(|r| r.id == id) {
            let known: Vec<&str> = rules::rules().iter().map(|r| r.id).collect();
            return Err(format!("unknown rule `{id}` (known: {})", known.join(", ")));
        }
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "scripts"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        files.push(root_manifest);
    }

    let mut rels: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            Some((rel, p))
        })
        .collect();
    rels.sort();

    let mut diagnostics = Vec::new();
    let mut files_checked = 0usize;
    for (rel, path) in &rels {
        let relevant = rules::rules()
            .iter()
            .filter(|r| only.is_none_or(|id| id == r.id))
            .any(|r| in_scope(r, rel));
        if !relevant {
            continue;
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files_checked += 1;
        diagnostics.extend(lint_file(rel, &src, only));
    }
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
    });
    Ok(Report { diagnostics, files_checked })
}

/// Recursive, sorted directory walk; skips build and VCS trees.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if entry.is_dir() {
            walk(&entry, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" || name.ends_with(".sh") {
            out.push(entry);
        }
    }
    Ok(())
}
