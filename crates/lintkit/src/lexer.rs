//! A hand-written Rust surface lexer.
//!
//! Splits a source file into classified byte-range tokens — code, line
//! comments, (nested) block comments, string/char literals in every
//! flavour (`"…"`, `b"…"`, `r"…"`/`r#"…"#`, `br#"…"#`, `'c'`, `b'c'`) —
//! so rules can match needles in *code* without being fooled by matches
//! inside comments or literals. Lifetimes (`'a`) are told apart from
//! char literals, and raw-string hash fences may be any length.
//!
//! On top of the token stream the lexer resolves `#[cfg(test)]` (and
//! `#[test]`) scoping by **brace extent**: the attribute exempts exactly
//! the item it is attached to — up to the matching close brace of the
//! item's body, or the terminating `;` for brace-less items — instead of
//! the old verify.sh heuristic that stopped scanning a whole file at its
//! *first* test attribute. Attributes are recognised literally
//! (`#[cfg(test)]`), which is the only spelling this workspace uses.

/// Classification of a lexed byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Plain code: everything that is not a comment or a literal.
    Code,
    /// `// …` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, with nesting.
    BlockComment,
    /// Any string/char/byte literal (`"…"`, `r#"…"#`, `b"…"`, `'c'`, …).
    Literal,
}

/// A classified byte range of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the range is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// A lexed source file: tokens plus the line map and test extents
/// derived from them.
pub struct Lexed<'a> {
    /// The source text the token offsets index into.
    pub src: &'a str,
    /// The classified ranges, in order, covering the whole file.
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line (line 1 first).
    line_starts: Vec<usize>,
    /// Byte ranges covered by a `#[cfg(test)]`/`#[test]` item.
    test_ranges: Vec<(usize, usize)>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexed<'a> {
    /// Lex a whole file.
    pub fn lex(src: &'a str) -> Lexed<'a> {
        let bytes = src.as_bytes();
        let mut tokens: Vec<Token> = Vec::new();
        let mut code_start = 0usize;
        let mut i = 0usize;

        let flush_code = |tokens: &mut Vec<Token>, code_start: usize, end: usize| {
            if end > code_start {
                tokens.push(Token { kind: TokKind::Code, start: code_start, end });
            }
        };

        while i < bytes.len() {
            let b = bytes[i];
            // Line comment.
            if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                flush_code(&mut tokens, code_start, i);
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::LineComment, start, end: i });
                code_start = i;
                continue;
            }
            // Block comment, nesting tracked.
            if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                flush_code(&mut tokens, code_start, i);
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                tokens.push(Token { kind: TokKind::BlockComment, start, end: i });
                code_start = i;
                continue;
            }
            // Identifier (consumed whole so `unsafe_code` never reads as
            // `unsafe`, and so `r`/`b`/`br` string prefixes are seen).
            if b.is_ascii_alphabetic() || b == b'_' {
                let word_start = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i += 1;
                }
                let word = &src[word_start..i];
                // Raw / byte string prefixes: the literal starts at the
                // prefix, not at the quote.
                let (raw, byte_str) = match word {
                    "r" => (true, false),
                    "b" => (false, true),
                    "br" => (true, true),
                    _ => (false, false),
                };
                if raw || byte_str {
                    let mut j = i;
                    let mut hashes = 0usize;
                    if raw {
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                    }
                    if bytes.get(j) == Some(&b'"') && (raw || hashes == 0) {
                        flush_code(&mut tokens, code_start, word_start);
                        i = if raw {
                            Self::scan_raw_string(bytes, j + 1, hashes)
                        } else {
                            Self::scan_string(bytes, j + 1)
                        };
                        tokens.push(Token { kind: TokKind::Literal, start: word_start, end: i });
                        code_start = i;
                        continue;
                    }
                    // `b'x'` byte-char literal.
                    if byte_str && !raw && bytes.get(j) == Some(&b'\'') {
                        flush_code(&mut tokens, code_start, word_start);
                        i = Self::scan_char(bytes, j + 1);
                        tokens.push(Token { kind: TokKind::Literal, start: word_start, end: i });
                        code_start = i;
                        continue;
                    }
                }
                continue;
            }
            // String literal.
            if b == b'"' {
                flush_code(&mut tokens, code_start, i);
                let start = i;
                i = Self::scan_string(bytes, i + 1);
                tokens.push(Token { kind: TokKind::Literal, start, end: i });
                code_start = i;
                continue;
            }
            // Char literal vs lifetime: `'` starts a char literal when it
            // is `'\…'` or `'<one scalar>'`; `'ident` not followed by a
            // closing quote is a lifetime and stays code.
            if b == b'\'' {
                let next = bytes.get(i + 1).copied();
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(c) if is_ident(c) => {
                        // `'a'` is a char; `'a` (no close) is a lifetime.
                        let mut j = i + 1;
                        while j < bytes.len() && is_ident(bytes[j]) {
                            j += 1;
                        }
                        bytes.get(j) == Some(&b'\'')
                    }
                    Some(b'\'') => false,
                    Some(_) => {
                        // Punctuation char like `'.'` or `'('`: a char
                        // literal exactly when a quote closes it. Find
                        // the char's end (one UTF-8 scalar) and peek.
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                            j += 1;
                        }
                        j < bytes.len() && bytes[j] == b'\''
                    }
                    None => false,
                };
                if is_char {
                    flush_code(&mut tokens, code_start, i);
                    let start = i;
                    i = Self::scan_char(bytes, i + 1);
                    tokens.push(Token { kind: TokKind::Literal, start, end: i });
                    code_start = i;
                    continue;
                }
                i += 1;
                continue;
            }
            i += 1;
        }
        flush_code(&mut tokens, code_start, bytes.len());

        let mut line_starts = vec![0usize];
        for (off, byte) in bytes.iter().enumerate() {
            if *byte == b'\n' {
                line_starts.push(off + 1);
            }
        }

        let mut lexed = Lexed { src, tokens, line_starts, test_ranges: Vec::new() };
        lexed.test_ranges = lexed.find_test_ranges();
        lexed
    }

    /// Scan past a `"…"` body with escapes; `i` is just after the quote.
    fn scan_string(bytes: &[u8], mut i: usize) -> usize {
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    /// Scan past a `r#"…"#` body; `i` is just after the opening quote.
    fn scan_raw_string(bytes: &[u8], mut i: usize, hashes: usize) -> usize {
        while i < bytes.len() {
            if bytes[i] == b'"' {
                let mut j = i + 1;
                let mut n = 0usize;
                while n < hashes && bytes.get(j) == Some(&b'#') {
                    n += 1;
                    j += 1;
                }
                if n == hashes {
                    return j;
                }
            }
            i += 1;
        }
        i
    }

    /// Scan past a `'…'` body with escapes; `i` is just after the quote.
    fn scan_char(bytes: &[u8], mut i: usize) -> usize {
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'\'' => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    /// Resolve every `#[cfg(test)]` / `#[test]` attribute in code to the
    /// byte extent of the item it attaches to: through the matching `}`
    /// of the first brace block at the attribute's level, or to the first
    /// `;` before any block (`#[cfg(test)] use …;`, `mod t;`).
    fn find_test_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for t in &self.tokens {
            if t.kind != TokKind::Code {
                continue;
            }
            let text = &self.src[t.start..t.end];
            for pat in ["#[cfg(test)]", "#[test]"] {
                let mut from = 0usize;
                while let Some(rel) = text[from..].find(pat) {
                    let at = t.start + from + rel;
                    from += rel + pat.len();
                    if ranges.iter().any(|(s, e)| at >= *s && at < *e) {
                        continue;
                    }
                    let end = self.item_extent_end(at + pat.len());
                    ranges.push((at, end));
                }
            }
        }
        ranges.sort_unstable();
        ranges
    }

    /// Walk code tokens from `from` and return the byte offset just past
    /// the attached item: the matching `}` of the first top-level brace
    /// block, or the first top-level `;` seen before any block.
    fn item_extent_end(&self, from: usize) -> usize {
        let mut depth = 0i64;
        let mut seen_block = false;
        for t in &self.tokens {
            if t.kind != TokKind::Code || t.end <= from {
                continue;
            }
            let start = t.start.max(from);
            for (rel, b) in self.src.as_bytes()[start..t.end].iter().enumerate() {
                match b {
                    b'{' => {
                        depth += 1;
                        seen_block = true;
                    }
                    b'}' => {
                        depth -= 1;
                        if seen_block && depth <= 0 {
                            return start + rel + 1;
                        }
                    }
                    b';' if depth == 0 && !seen_block => return start + rel + 1,
                    _ => {}
                }
            }
        }
        self.src.len()
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, off: usize) -> usize {
        self.line_starts.partition_point(|s| *s <= off)
    }

    /// 1-based (line, column) of a byte offset (column in bytes).
    pub fn line_col(&self, off: usize) -> (usize, usize) {
        let line = self.line_of(off);
        (line, off - self.line_starts[line - 1] + 1)
    }

    /// The text of a 1-based line, without its newline.
    pub fn line_text(&self, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|s| s - 1)
            .unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches('\r')
    }

    /// Whether `off` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test(&self, off: usize) -> bool {
        self.test_ranges.iter().any(|(s, e)| off >= *s && off < *e)
    }

    /// Whether any comment token ending on `line` contains `marker`
    /// (inline allowlists live in comments, never in code or literals).
    pub fn line_has_marker(&self, line: usize, marker: &str) -> bool {
        self.tokens.iter().any(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && self.line_of(t.end.saturating_sub(1)) >= line
                && self.line_of(t.start) <= line
                && self.src[t.start..t.end].contains(marker)
        })
    }

    /// The code tokens (offset + text), in order.
    pub fn code_segments(&self) -> impl Iterator<Item = (usize, &'a str)> + '_ {
        self.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Code)
            .map(|t| (t.start, &self.src[t.start..t.end]))
    }

    /// Flatten the code tokens into a lexeme stream of identifiers and
    /// single punctuation bytes (whitespace and numerics dropped), for
    /// rules that need word-level context.
    pub fn code_lexemes(&self) -> Vec<(usize, Lexeme<'a>)> {
        let mut out = Vec::new();
        for (base, text) in self.code_segments() {
            let bytes = text.as_bytes();
            let mut i = 0usize;
            while i < bytes.len() {
                let b = bytes[i];
                if b.is_ascii_alphabetic() || b == b'_' {
                    let s = i;
                    while i < bytes.len() && is_ident(bytes[i]) {
                        i += 1;
                    }
                    out.push((base + s, Lexeme::Ident(&text[s..i])));
                } else if b.is_ascii_whitespace() || b.is_ascii_digit() {
                    i += 1;
                } else {
                    out.push((base + i, Lexeme::Punct(b)));
                    i += 1;
                }
            }
        }
        out
    }
}

/// A word-level code lexeme (see [`Lexed::code_lexemes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lexeme<'a> {
    /// An identifier or keyword.
    Ident(&'a str),
    /// One punctuation byte.
    Punct(u8),
}
