//! The rule table: every source-level invariant the workspace enforces,
//! as data plus a handful of token-aware checks.
//!
//! Seven rules port the old `scripts/verify.sh` awk/grep deny-lists;
//! `no-map-iteration`, `unsafe-needs-safety-comment`,
//! `stdout-discipline`, and `no-wallclock` are new invariants the shell
//! could not express; `verify-shell-discipline` is the meta-rule that
//! keeps ad-hoc source scanning from creeping back into verify.sh.
//!
//! Any diagnostic can be suppressed for one line by a comment on that
//! line containing `lint: allow(<rule-id>)`; `no-owned-copy-hotpath`
//! also honours the pre-existing `owned-fallback` markers.

use crate::lexer::{Lexed, Lexeme};

/// Where a rule looks.
pub struct Scope {
    /// Workspace-relative path prefixes the rule applies to.
    pub roots: &'static [&'static str],
    /// Path prefixes (or exact files) the rule never applies to.
    pub exclude: &'static [&'static str],
    /// Restrict to `src/` trees (skip `tests/`, `benches/`, `examples/`).
    pub src_only: bool,
    /// Also scan `#[cfg(test)]`-scoped code and test trees.
    pub include_tests: bool,
}

/// How a rule matches.
pub enum Check {
    /// Literal needles searched in code tokens only, with identifier
    /// boundary guards (so `println!` never matches inside `eprintln!`).
    Needles(&'static [&'static str]),
    /// Iteration over `FastMap`/`FastSet`/`HashMap`/`HashSet` bindings.
    MapIteration,
    /// `unsafe` blocks and `unsafe impl` need a `// SAFETY:` rationale.
    UnsafeSafety,
    /// Denied external crates in `Cargo.toml` manifests.
    DepDenylist(&'static [&'static str]),
    /// awk/grep source scanning inside `scripts/verify.sh`.
    ShellScan,
}

/// One invariant.
pub struct Rule {
    /// Stable id, used in diagnostics and `lint: allow(...)` markers.
    pub id: &'static str,
    /// One-line statement of the invariant.
    pub desc: &'static str,
    /// What to do instead when the rule fires.
    pub hint: &'static str,
    /// Where the rule looks.
    pub scope: Scope,
    /// How it matches.
    pub check: Check,
    /// Extra legacy marker substrings that suppress this rule's
    /// diagnostics on their line (besides `lint: allow(<id>)`).
    pub markers: &'static [&'static str],
}

/// Map/set types whose bucket order is nondeterministic.
pub const HASHED_TYPES: [&str; 4] = ["FastMap", "FastSet", "HashMap", "HashSet"];

/// Methods that iterate a map in bucket order.
pub const ITER_METHODS: [&str; 9] = [
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "into_keys",
    "into_values", "drain",
];

/// The full rule table, in reporting order.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            id: "no-unwrap-parse",
            desc: "parse paths must not panic: no .unwrap()/.expect( in netpkt or dns-wire",
            hint: "return a typed Err (PktError/WireError); malformed input is data, not a bug",
            scope: Scope {
                roots: &["crates/netpkt/src", "crates/dns-wire/src"],
                exclude: &[],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&[".unwrap()", ".expect("]),
            markers: &[],
        },
        Rule {
            id: "no-owned-copy-hotpath",
            desc: "per-frame parse paths stay copy-free: no .to_vec()/.clone() in pcapio, netpkt, dns-wire",
            hint: "borrow from the record buffer; mark a sanctioned exit with `// owned-fallback: why`",
            scope: Scope {
                roots: &["crates/pcapio/src", "crates/netpkt/src", "crates/dns-wire/src"],
                exclude: &[],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&[".to_vec()", ".clone()"]),
            markers: &["owned-fallback"],
        },
        Rule {
            id: "clock-seam",
            desc: "monotonic time is read in one place: no Instant::now outside crates/xkit",
            hint: "use xkit::obs::clock::now() so timing stays on the one seam",
            scope: Scope {
                roots: &["crates"],
                exclude: &["crates/xkit/"],
                src_only: false,
                include_tests: true,
            },
            check: Check::Needles(&["Instant::now"]),
            markers: &[],
        },
        Rule {
            id: "socket-fence",
            desc: "sockets stay behind the two seams: no TcpListener/TcpStream/UdpSocket outside xkit::obs::http and pcapio::raw",
            hint: "serve through xkit::obs::http or capture through pcapio::raw",
            scope: Scope {
                roots: &["crates"],
                exclude: &["crates/xkit/src/obs/http.rs", "crates/pcapio/src/raw.rs"],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&["TcpListener", "TcpStream", "UdpSocket"]),
            markers: &[],
        },
        Rule {
            id: "ingest-seam",
            desc: "all ingestion goes through the RecordSource seam: no PcapReader::new outside pcapio",
            hint: "construct the file backend via pcapio::source::file",
            scope: Scope {
                roots: &["crates"],
                exclude: &["crates/pcapio/"],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&["PcapReader::new"]),
            markers: &[],
        },
        Rule {
            id: "no-batch-in-stream",
            desc: "the streaming engine must not fall back to a full-trace batch pass",
            hint: "stay on the windowed epoch path; the batch pipeline is only the test oracle",
            scope: Scope {
                roots: &["crates/dns-context/src/stream.rs"],
                exclude: &[],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&[
                "Pairing::build",
                "Analysis::run",
                "Monitor::process_pcap",
                ".finish().metrics()",
            ]),
            markers: &[],
        },
        Rule {
            id: "dep-denylist",
            desc: "the workspace is zero-dependency: no external crates in any manifest",
            hint: "use the in-tree equivalent (xkit::rng, xkit::par, xkit::bench, xkit::collections)",
            scope: Scope {
                roots: &["Cargo.toml", "crates"],
                exclude: &[],
                src_only: false,
                include_tests: true,
            },
            check: Check::DepDenylist(&["rand", "criterion", "proptest", "crossbeam", "parking_lot"]),
            markers: &[],
        },
        Rule {
            id: "no-map-iteration",
            desc: "FastMap/FastSet/HashMap/HashSet are never iterated on an output path (bucket order is not deterministic)",
            hint: "keep a first-seen key list or sort before iterating; order-insensitive folds may carry `// lint: allow(no-map-iteration): why`",
            scope: Scope {
                roots: &["crates"],
                exclude: &[],
                src_only: true,
                include_tests: false,
            },
            check: Check::MapIteration,
            markers: &[],
        },
        Rule {
            id: "unsafe-needs-safety-comment",
            desc: "every unsafe block / unsafe impl is preceded by a `// SAFETY:` rationale",
            hint: "state the invariant that makes the block sound, on or just above its line",
            scope: Scope {
                roots: &["crates"],
                exclude: &[],
                src_only: true,
                include_tests: false,
            },
            check: Check::UnsafeSafety,
            markers: &[],
        },
        Rule {
            id: "stdout-discipline",
            desc: "stdout carries exactly one JSON document: no println!/print!/dbg! in library crates",
            hint: "route human-readable output through eprintln! (stderr)",
            scope: Scope {
                roots: &["crates"],
                exclude: &["crates/bench/src/bin/"],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&["println!", "print!", "dbg!"]),
            markers: &[],
        },
        Rule {
            id: "no-wallclock",
            desc: "wall-clock reads stay on the sanctioned seams: no SystemTime::now/thread::sleep outside xkit clock + http",
            hint: "take timestamps through xkit::obs::clock or justify the seam with an allow marker",
            scope: Scope {
                roots: &["crates"],
                exclude: &["crates/xkit/src/obs/clock.rs", "crates/xkit/src/obs/http.rs"],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&["SystemTime::now", "thread::sleep"]),
            markers: &[],
        },
        Rule {
            id: "thread-spawn-fence",
            desc: "detached threads stay behind the two seams: no bare thread::spawn outside xkit::par and xkit::obs::http",
            hint: "submit to an xkit::par::Pool (or a scoped par helper) or serve through xkit::obs::http",
            scope: Scope {
                roots: &["crates"],
                exclude: &["crates/xkit/src/par.rs", "crates/xkit/src/obs/http.rs"],
                src_only: true,
                include_tests: false,
            },
            check: Check::Needles(&["thread::spawn"]),
            markers: &[],
        },
        Rule {
            id: "verify-shell-discipline",
            desc: "verify.sh contains no freestanding awk/grep source scans: invariants live in lintkit rules",
            hint: "add a lintkit rule instead of a shell deny-grep",
            scope: Scope {
                roots: &["scripts/verify.sh"],
                exclude: &[],
                src_only: false,
                include_tests: true,
            },
            check: Check::ShellScan,
            markers: &[],
        },
    ]
}

/// A raw hit inside one file: byte offset of the match.
pub struct Hit {
    /// Byte offset the diagnostic anchors to.
    pub at: usize,
    /// Needle or short description of what matched.
    pub what: String,
}

/// Run a needle check over the code tokens of a lexed file.
pub fn needle_hits(lexed: &Lexed<'_>, needles: &[&str]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (base, text) in lexed.code_segments() {
        for needle in needles {
            let nb = needle.as_bytes();
            let lead_guard = nb.first().is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
            let tail_guard = nb.last().is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
            let mut from = 0usize;
            while let Some(rel) = text[from..].find(needle) {
                let at = from + rel;
                from = at + 1;
                let bytes = text.as_bytes();
                if lead_guard
                    && at > 0
                    && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_')
                {
                    continue;
                }
                let end = at + nb.len();
                if tail_guard
                    && end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    continue;
                }
                hits.push(Hit { at: base + at, what: (*needle).to_string() });
            }
        }
    }
    hits.sort_by_key(|h| h.at);
    hits
}

/// Token-aware map-iteration check: collect the file's bindings whose
/// declared (or constructed) type is one of [`HASHED_TYPES`], then flag
/// `binding.iter()`-style calls and bare `for … in [&mut] binding` loops
/// over them.
pub fn map_iteration_hits(lexed: &Lexed<'_>) -> Vec<Hit> {
    let toks = lexed.code_lexemes();
    let ident = |i: usize| match toks.get(i) {
        Some((_, Lexeme::Ident(s))) => Some(*s),
        _ => None,
    };
    let punct = |i: usize| match toks.get(i) {
        Some((_, Lexeme::Punct(b))) => Some(*b),
        _ => None,
    };

    // Pass A: `name: [&][mut]['a] FastMap<…>` (fields, params, lets).
    let mut bindings: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident(i) else { continue };
        // A single `:` (not `::`) right after the name.
        if punct(i + 1) != Some(b':') || punct(i + 2) == Some(b':') {
            continue;
        }
        if i > 0 && punct(i - 1) == Some(b':') {
            continue;
        }
        let mut j = i + 2;
        loop {
            match toks.get(j) {
                Some((_, Lexeme::Punct(b'&'))) => j += 1,
                // A lifetime is the quote plus its identifier.
                Some((_, Lexeme::Punct(b'\''))) => j += 2,
                Some((_, Lexeme::Ident("mut"))) => j += 1,
                Some((_, Lexeme::Ident(ty))) => {
                    if HASHED_TYPES.contains(ty) && !bindings.contains(&name) {
                        bindings.push(name);
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    // Pass A': `let [mut] name = … FastMap::…` / `… HashMap::new()` up
    // to the statement's `;`.
    for i in 0..toks.len() {
        if ident(i) != Some("let") {
            continue;
        }
        let mut j = i + 1;
        if ident(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = ident(j) else { continue };
        let mut k = j + 1;
        while let Some(tok) = toks.get(k) {
            match tok.1 {
                Lexeme::Punct(b';') => break,
                Lexeme::Ident(ty)
                    if HASHED_TYPES.contains(&ty)
                        && punct(k + 1) == Some(b':')
                        && punct(k + 2) == Some(b':') =>
                {
                    if !bindings.contains(&name) {
                        bindings.push(name);
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }

    let mut hits = Vec::new();
    // U1: `binding.method(` with an iterating method.
    for i in 0..toks.len() {
        let Some(name) = ident(i) else { continue };
        if !bindings.contains(&name) {
            continue;
        }
        if punct(i + 1) != Some(b'.') {
            continue;
        }
        let Some(m) = ident(i + 2) else { continue };
        if ITER_METHODS.contains(&m) && punct(i + 3) == Some(b'(') {
            hits.push(Hit { at: toks[i + 2].0, what: format!("{name}.{m}()") });
        }
    }
    // U2: `for pat in [&][mut] [self.]binding {` — iteration by ref
    // without a method call.
    for i in 0..toks.len() {
        if ident(i) != Some("for") {
            continue;
        }
        // Find the matching `in` at bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let in_at = loop {
            match toks.get(j) {
                None => break None,
                Some((_, Lexeme::Punct(b'(' | b'['))) => depth += 1,
                Some((_, Lexeme::Punct(b')' | b']'))) => depth -= 1,
                Some((_, Lexeme::Ident("in"))) if depth == 0 => break Some(j),
                Some((_, Lexeme::Punct(b'{'))) => break None,
                _ => {}
            }
            j += 1;
            if j > i + 64 {
                break None;
            }
        };
        let Some(in_at) = in_at else { continue };
        // Collect the iterated expression up to the loop body `{`.
        let mut expr: Vec<(usize, Lexeme<'_>)> = Vec::new();
        let mut k = in_at + 1;
        let mut simple = true;
        loop {
            match toks.get(k) {
                None => {
                    simple = false;
                    break;
                }
                Some((_, Lexeme::Punct(b'{'))) => break,
                Some(tok) => {
                    match tok.1 {
                        Lexeme::Punct(b'&' | b'.') | Lexeme::Ident(_) => expr.push(*tok),
                        _ => simple = false,
                    }
                }
            }
            k += 1;
            if k > in_at + 16 {
                simple = false;
                break;
            }
        }
        if !simple {
            continue;
        }
        if let Some((at, Lexeme::Ident(name))) = expr.last() {
            if *name != "mut" && bindings.contains(name) {
                hits.push(Hit { at: *at, what: format!("for … in {name}") });
            }
        }
    }
    hits.sort_by_key(|h| h.at);
    hits.dedup_by_key(|h| h.at);
    hits
}

/// `unsafe` blocks / impls without a `// SAFETY:` comment on their line
/// or within the three lines above.
pub fn unsafe_safety_hits(lexed: &Lexed<'_>) -> Vec<Hit> {
    let toks = lexed.code_lexemes();
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        let (at, Lexeme::Ident("unsafe")) = toks[i] else { continue };
        // Only blocks (`unsafe {`) and impls (`unsafe impl`) assert an
        // invariant at this site; `unsafe fn`/`unsafe trait` declare one
        // for callers and are documented at the signature instead.
        let needs = match toks.get(i + 1) {
            Some((_, Lexeme::Punct(b'{'))) => true,
            Some((_, Lexeme::Ident("impl"))) => true,
            _ => false,
        };
        if !needs {
            continue;
        }
        let line = lexed.line_of(at);
        let covered = (line.saturating_sub(3)..=line).any(|l| l >= 1 && lexed.line_has_marker(l, "SAFETY:"));
        if !covered {
            hits.push(Hit { at, what: "unsafe without SAFETY: rationale".to_string() });
        }
    }
    hits
}

/// Denied dependency declarations in a `Cargo.toml`: a denied crate
/// name opening a line (`rand = …`, `rand.workspace = …`) outside
/// comments.
pub fn dep_denylist_hits(src: &str, denied: &[&str]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    let mut off = 0usize;
    for line in src.split_inclusive('\n') {
        let code = match line.find('#') {
            // TOML has no `#` inside bare keys; strings on dependency
            // lines never precede the key, so a plain split is enough.
            Some(h) => &line[..h],
            None => line,
        };
        let trimmed = code.trim_start();
        for name in denied {
            if trimmed.starts_with(name) {
                let rest = &trimmed[name.len()..];
                if rest.trim_start().starts_with('=')
                    || rest.starts_with('.')
                    || rest.starts_with(' ')
                    || rest.starts_with('\t')
                {
                    hits.push((off + (code.len() - trimmed.len()), format!("dependency `{name}`")));
                }
            }
        }
        off += line.len();
    }
    hits
}

/// awk/grep source scanning inside verify.sh. Any `awk` at all is
/// flagged (a multi-line awk program hides its target paths from a
/// line-based scan, so the opener is the reliable anchor); recursive
/// greps and finds aimed at `.rs` files are flagged too. Sanctioned
/// numeric post-processing carries an allow marker on or above its
/// line.
pub fn shell_scan_hits(src: &str) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    let mut off = 0usize;
    for line in src.split_inclusive('\n') {
        let code = line.split('#').next().unwrap_or("");
        if code.contains("awk") {
            hits.push((off, "awk invocation (invariants belong in lintkit rules)".to_string()));
        } else if code.contains("grep") && (code.contains("*.rs") || code.contains("--include"))
        {
            hits.push((off, "recursive grep over Rust sources".to_string()));
        } else if code.contains("find ") && code.contains(".rs") {
            hits.push((off, "find over Rust sources".to_string()));
        }
        off += line.len();
    }
    hits
}
