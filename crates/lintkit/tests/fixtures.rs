//! Rule corpus: one positive and one negative fixture per rule, plus
//! the suppression paths (test scoping, allow markers, comment/literal
//! blindness) and the canonical-JSON rendering.

use lintkit::{lint_file, Diagnostic};

/// Diagnostics for `src` filed under `path`, all rules active.
fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_file(path, src, None)
}

/// Ids of the rules that fired.
fn fired(path: &str, src: &str) -> Vec<String> {
    diags(path, src).into_iter().map(|d| d.rule).collect()
}

// ---- no-unwrap-parse ---------------------------------------------------

#[test]
fn unwrap_in_parse_path_fires() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let d = diags("crates/netpkt/src/lib.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "no-unwrap-parse");
    assert_eq!((d[0].line, d[0].col), (1, 34));
    assert!(d[0].excerpt.contains("x.unwrap()"));
    assert!(!d[0].hint.is_empty());
}

#[test]
fn unwrap_outside_parse_crates_is_out_of_scope() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(fired("crates/dns-context/src/lib.rs", src).iter().all(|r| r != "no-unwrap-parse"));
}

#[test]
fn unwrap_after_test_module_still_fires() {
    // The scoping fix: the test module exempts only its own extent.
    let src = "#[cfg(test)]\nmod tests { fn t(x: Option<u8>) { x.unwrap(); } }\n\
               pub fn live(x: Option<u8>) -> u8 { x.expect(\"live\") }\n";
    let d = diags("crates/dns-wire/src/lib.rs", src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 3);
    assert_eq!(d[0].what, ".expect(");
}

#[test]
fn unwrap_in_comment_or_raw_string_is_inert() {
    let src = "// x.unwrap()\n/* x.unwrap() */\npub fn f() -> String { r#\".unwrap()\"#.into() }\n";
    assert!(diags("crates/netpkt/src/lib.rs", src).is_empty());
}

#[test]
fn allow_marker_suppresses_on_line_and_from_block_above() {
    let on_line = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(no-unwrap-parse): proven Some\n";
    assert!(diags("crates/netpkt/src/lib.rs", on_line).is_empty());
    let above = "// lint: allow(no-unwrap-parse): slice length checked on\n\
                 // the previous line, so the tail comment spills over\n\
                 pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(diags("crates/netpkt/src/lib.rs", above).is_empty());
    let detached = "// lint: allow(no-unwrap-parse): too far away\n\
                    \n\
                    pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(diags("crates/netpkt/src/lib.rs", detached).len(), 1, "a blank line breaks the block");
}

// ---- no-owned-copy-hotpath ---------------------------------------------

#[test]
fn clone_on_hot_path_fires_and_owned_fallback_suppresses() {
    let src = "pub fn f(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
    assert_eq!(fired("crates/pcapio/src/lib.rs", src), vec!["no-owned-copy-hotpath"]);
    let marked = "pub fn f(d: &[u8]) -> Vec<u8> { d.to_vec() } // owned-fallback: rewrite seam\n";
    assert!(diags("crates/pcapio/src/lib.rs", marked).is_empty());
}

#[test]
fn clone_outside_hot_crates_is_out_of_scope() {
    let src = "pub fn f(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
    assert!(diags("crates/cache-sim/src/lib.rs", src).is_empty());
}

// ---- clock-seam / no-wallclock -----------------------------------------

#[test]
fn instant_now_fires_everywhere_but_xkit() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(fired("crates/dns-context/src/lib.rs", src), vec!["clock-seam"]);
    assert!(diags("crates/xkit/src/bench.rs", src).is_empty());
}

#[test]
fn wallclock_fires_outside_the_clock_seam() {
    let src = "pub fn f() { let _ = std::time::SystemTime::now(); }\n";
    assert_eq!(fired("crates/pcapio/src/lib.rs", src), vec!["no-wallclock"]);
    assert!(diags("crates/xkit/src/obs/clock.rs", src).is_empty());
}

// ---- socket-fence / ingest-seam / no-batch-in-stream --------------------

#[test]
fn sockets_fire_outside_the_two_seams() {
    let src = "use std::net::TcpListener;\n";
    assert_eq!(fired("crates/dns-context/src/lib.rs", src), vec!["socket-fence"]);
    assert!(diags("crates/xkit/src/obs/http.rs", src).is_empty());
    assert!(diags("crates/pcapio/src/raw.rs", src).is_empty());
}

// ---- thread-spawn-fence --------------------------------------------------

#[test]
fn bare_thread_spawn_fires_outside_the_spawn_seams() {
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(fired("crates/bench/src/serve.rs", src), vec!["thread-spawn-fence"]);
    assert_eq!(fired("crates/dns-context/src/lib.rs", src), vec!["thread-spawn-fence"]);
    // The two sanctioned seams: the pool substrate and the accept loop.
    assert!(diags("crates/xkit/src/par.rs", src).is_empty());
    assert!(diags("crates/xkit/src/obs/http.rs", src).is_empty());
}

#[test]
fn thread_spawn_in_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n";
    assert!(diags("crates/pcapio/src/ring.rs", src).is_empty());
    assert!(diags("crates/bench/tests/serve_daemon.rs", src).is_empty());
}

#[test]
fn scoped_spawns_do_not_trip_the_thread_fence() {
    // `scope.spawn(...)` and `std::thread::scope` are structured
    // concurrency, not detached threads; only `thread::spawn` is fenced.
    let src = "pub fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    assert!(fired("crates/dns-context/src/lib.rs", src)
        .iter()
        .all(|r| r != "thread-spawn-fence"));
}

#[test]
fn pcap_reader_construction_fires_outside_pcapio() {
    let src = "pub fn f(b: &[u8]) { let _ = PcapReader::new(b); }\n";
    assert_eq!(fired("crates/dns-context/src/lib.rs", src), vec!["ingest-seam"]);
    assert!(diags("crates/pcapio/src/source.rs", src).is_empty());
}

#[test]
fn batch_entry_points_fire_only_in_stream_rs() {
    let src = "pub fn f() { Pairing::build(); }\n";
    assert_eq!(fired("crates/dns-context/src/stream.rs", src), vec!["no-batch-in-stream"]);
    assert!(diags("crates/dns-context/src/analysis.rs", src).is_empty());
}

// ---- dep-denylist -------------------------------------------------------

#[test]
fn denied_dependency_fires_in_manifests() {
    let src = "[dependencies]\nrand = \"0.8\"\n";
    let d = diags("crates/demo/Cargo.toml", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "dep-denylist");
    assert_eq!(d[0].line, 2);
    assert!(d[0].what.contains("rand"));
}

#[test]
fn denylist_ignores_comments_prefix_words_and_non_manifests() {
    assert!(diags("crates/demo/Cargo.toml", "# rand = \"0.8\"\n").is_empty());
    assert!(diags("crates/demo/Cargo.toml", "randomize = \"1\"\n").is_empty());
    assert!(diags("crates/demo/Cargo.toml", "parking_lot.workspace = true\n").len() == 1);
    assert!(diags("crates/demo/src/lib.rs", "// rand = \"0.8\"\n").is_empty());
}

// ---- no-map-iteration ---------------------------------------------------

#[test]
fn map_method_iteration_fires() {
    let src = "pub fn f(m: &FastMap<u32, u32>) -> Vec<u32> { m.values().copied().collect() }\n";
    let d = diags("crates/dns-context/src/lib.rs", src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "no-map-iteration");
    assert_eq!(d[0].what, "m.values()");
}

#[test]
fn bare_for_loop_over_a_set_fires() {
    let src = "pub fn f() { let mut s = FastSet::default(); s.insert(1u32);\n\
               for x in &s { use_it(x); } }\n";
    let d = diags("crates/dns-context/src/lib.rs", src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].what, "for … in s");
}

#[test]
fn vec_iteration_and_keyed_lookups_are_fine() {
    let src = "pub fn f(m: &FastMap<u32, u32>, order: &[u32]) -> u32 {\n\
               let mut t = 0; for k in order { t += m.get(k).copied().unwrap_or(0); } t }\n";
    assert!(diags("crates/dns-context/src/lib.rs", src).is_empty());
}

#[test]
fn map_iteration_allow_marker_suppresses() {
    let src = "pub fn f(m: &FastMap<u32, u32>) -> u32 {\n\
               // lint: allow(no-map-iteration): order-insensitive sum\n\
               m.values().sum() }\n";
    assert!(diags("crates/dns-context/src/lib.rs", src).is_empty());
}

// ---- unsafe-needs-safety-comment ----------------------------------------

#[test]
fn unsafe_block_without_rationale_fires() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let d = diags("crates/xkit/src/lib.rs", src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "unsafe-needs-safety-comment");
}

#[test]
fn safety_comment_within_three_lines_covers() {
    let src = "pub fn f(p: *const u8) -> u8 {\n\
               // SAFETY: caller guarantees p is valid for reads.\n\
               unsafe { *p }\n}\n";
    assert!(diags("crates/xkit/src/lib.rs", src).is_empty());
}

#[test]
fn unsafe_fn_declaration_is_exempt_but_unsafe_impl_is_not() {
    let decl = "pub unsafe fn f() {}\n";
    assert!(diags("crates/xkit/src/lib.rs", decl).is_empty());
    let imp = "unsafe impl Send for Thing {}\n";
    assert_eq!(fired("crates/xkit/src/lib.rs", imp), vec!["unsafe-needs-safety-comment"]);
}

// ---- stdout-discipline --------------------------------------------------

#[test]
fn println_in_library_code_fires() {
    let src = "pub fn f() { println!(\"x\"); }\n";
    assert_eq!(fired("crates/dns-context/src/lib.rs", src), vec!["stdout-discipline"]);
}

#[test]
fn eprintln_and_bin_targets_are_fine() {
    assert!(diags("crates/dns-context/src/lib.rs", "pub fn f() { eprintln!(\"x\"); }\n").is_empty());
    assert!(diags("crates/bench/src/bin/repro.rs", "pub fn f() { println!(\"x\"); }\n").is_empty());
}

// ---- verify-shell-discipline --------------------------------------------

#[test]
fn awk_and_source_greps_fire_in_verify_sh() {
    let d = diags("scripts/verify.sh", "awk '/x/ { print }' file.rs\n");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "verify-shell-discipline");
    let d = diags("scripts/verify.sh", "grep -rn pat crates --include='*.rs'\n");
    assert_eq!(d.len(), 1);
    let d = diags("scripts/verify.sh", "find crates -name '*.rs' -exec cat {} +\n");
    assert_eq!(d.len(), 1);
}

#[test]
fn shell_scan_allows_markers_json_greps_and_other_scripts() {
    let marked = "# lint: allow(verify-shell-discipline): float gate\nawk 'BEGIN { exit (1 < 2) ? 0 : 1 }'\n";
    assert!(diags("scripts/verify.sh", marked).is_empty());
    assert!(diags("scripts/verify.sh", "grep -q '\"ok\":true' out.json\n").is_empty());
    assert!(diags("scripts/setup.sh", "awk '{ print }' notes.txt\n").is_empty());
}

// ---- engine-level behaviour ---------------------------------------------

#[test]
fn single_rule_filter_restricts_output() {
    let src = "pub fn f(x: Option<u8>) { x.unwrap(); println!(\"x\"); }\n";
    let all = lint_file("crates/netpkt/src/lib.rs", src, None);
    assert_eq!(all.len(), 2);
    let only = lint_file("crates/netpkt/src/lib.rs", src, Some("stdout-discipline"));
    assert_eq!(only.len(), 1);
    assert_eq!(only[0].rule, "stdout-discipline");
}

#[test]
fn diagnostics_sort_by_position_then_rule() {
    let src = "pub fn f(x: Option<u8>) { println!(\"a\"); x.unwrap(); }\n";
    let d = diags("crates/netpkt/src/lib.rs", src);
    assert_eq!(d.len(), 2);
    assert!(d[0].col < d[1].col);
}

#[test]
fn report_json_is_canonical_and_parses_back() {
    let report = lintkit::Report {
        diagnostics: diags("crates/netpkt/src/lib.rs", "pub fn f(x: Option<u8>) { x.unwrap(); }\n"),
        files_checked: 1,
    };
    let doc = report.to_json();
    let v = xkit::obs::json::parse(&doc).expect("canonical JSON parses back");
    assert_eq!(v.get("tool").and_then(|t| t.as_str()), Some("lintkit"));
    assert!(matches!(v.get("ok"), Some(xkit::obs::json::Value::Bool(false))));
    let counts = v.get("counts").expect("counts object");
    assert_eq!(counts.get("no-unwrap-parse").and_then(|n| n.as_f64()), Some(1.0));
    let rules = v.get("rules").and_then(|r| r.as_arr()).expect("rules array");
    assert_eq!(rules.len(), lintkit::rules::rules().len());
}

#[test]
fn the_workspace_itself_is_clean() {
    // The self-check behind `repro lint` in verify.sh: the real tree has
    // zero violations (every sanctioned exception carries its marker).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lintkit::lint_workspace(&root, None).expect("workspace lints");
    assert!(report.ok(), "workspace must lint clean:\n{}", report.render_human());
    assert!(report.files_checked > 50, "walk found {} files", report.files_checked);
}
