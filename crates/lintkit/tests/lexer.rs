//! Lexer corpus: token classification, literal flavours, and the
//! brace-extent `#[cfg(test)]` scoping that fixes the old verify.sh
//! first-match bug.

use lintkit::lexer::{Lexed, TokKind};

/// Collect the code text of a file (everything outside comments and
/// literals), concatenated.
fn code_of(src: &str) -> String {
    Lexed::lex(src).code_segments().map(|(_, t)| t).collect()
}

#[test]
fn line_comments_are_not_code() {
    let code = code_of("let a = 1; // x.unwrap() here\nlet b = 2;\n");
    assert!(code.contains("let a"));
    assert!(code.contains("let b"));
    assert!(!code.contains("unwrap"));
}

#[test]
fn block_comments_nest() {
    let src = "before /* outer /* inner */ still.unwrap() */ after";
    let code = code_of(src);
    assert!(code.contains("before"));
    assert!(code.contains("after"));
    assert!(!code.contains("unwrap"), "nested close must not end the comment early");
}

#[test]
fn plain_strings_hide_needles_and_respect_escapes() {
    let code = code_of(r#"let s = "a \" x.unwrap() y"; s.len()"#);
    assert!(!code.contains("unwrap"));
    assert!(code.contains("s.len()"));
}

#[test]
fn raw_strings_with_hash_fences() {
    let src = r###"let s = r##"quote " and "# still inside .unwrap()"##; tail()"###;
    let code = code_of(src);
    assert!(!code.contains("unwrap"), "raw-string body with inner fences is a literal");
    assert!(code.contains("tail()"));
}

#[test]
fn byte_strings_and_byte_chars() {
    let code = code_of(r#"let a = b"x.unwrap()"; let c = b'\''; done()"#);
    assert!(!code.contains("unwrap"));
    assert!(code.contains("done()"));
}

#[test]
fn char_literal_versus_lifetime() {
    // `'a'` is a literal; `'a` in a generic list stays code, and the
    // code after both is still scanned.
    let src = "fn f<'a>(x: &'a str) -> char { let c = '}'; x.bytes().next(); c }";
    let lexed = Lexed::lex(src);
    let code: String = lexed.code_segments().map(|(_, t)| t).collect();
    assert!(!code.contains("'}'"), "char literal is not code");
    assert!(code.contains("x.bytes()"), "lifetime must not open a char literal");
    assert!(
        lexed.tokens.iter().any(|t| t.kind == TokKind::Literal && &src[t.start..t.end] == "'}'"),
        "the brace char literal is lexed as one literal token"
    );
}

#[test]
fn test_module_extent_ends_at_matching_brace() {
    // The old awk heuristic stopped scanning the whole file at the first
    // `#[cfg(test)]`; the lexer must exempt exactly the module body.
    let src = "fn live() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn inner() { nested(); }\n\
               }\n\
               fn after_tests() {}\n";
    let lexed = Lexed::lex(src);
    let inner = src.find("nested").unwrap();
    let after = src.find("after_tests").unwrap();
    let before = src.find("live").unwrap();
    assert!(lexed.in_test(inner), "inside the test module");
    assert!(!lexed.in_test(before), "before the attribute");
    assert!(!lexed.in_test(after), "code after the test module is live again");
}

#[test]
fn test_fn_extent_is_just_the_function() {
    let src = "#[test]\nfn one() { body(); }\nfn two() { other(); }\n";
    let lexed = Lexed::lex(src);
    assert!(lexed.in_test(src.find("body").unwrap()));
    assert!(!lexed.in_test(src.find("other").unwrap()));
}

#[test]
fn braceless_test_item_ends_at_semicolon() {
    let src = "#[cfg(test)]\nuse crate::fixtures::mk;\nfn live() {}\n";
    let lexed = Lexed::lex(src);
    assert!(lexed.in_test(src.find("fixtures").unwrap()));
    assert!(!lexed.in_test(src.find("live").unwrap()));
}

#[test]
fn cfg_test_in_comment_or_string_is_inert() {
    let src = "// #[cfg(test)]\nlet a = \"#[cfg(test)]\";\nfn live() { body(); }\n";
    let lexed = Lexed::lex(src);
    assert!(!lexed.in_test(src.find("body").unwrap()));
}

#[test]
fn nested_test_module_inside_test_module() {
    // An inner #[cfg(test)] inside an outer one must not extend the
    // outer extent past its own closing brace.
    let src = "#[cfg(test)]\n\
               mod outer {\n\
                   #[cfg(test)]\n\
                   mod inner { fn f() { deep(); } }\n\
               }\n\
               fn live() { out(); }\n";
    let lexed = Lexed::lex(src);
    assert!(lexed.in_test(src.find("deep").unwrap()));
    assert!(!lexed.in_test(src.find("out()").unwrap()));
}

#[test]
fn line_col_is_one_based_bytes() {
    let src = "abc\ndef\n";
    let lexed = Lexed::lex(src);
    assert_eq!(lexed.line_col(0), (1, 1));
    assert_eq!(lexed.line_col(4), (2, 1));
    assert_eq!(lexed.line_col(6), (2, 3));
    assert_eq!(lexed.line_text(2), "def");
}

#[test]
fn markers_live_in_comments_only() {
    let src = "let a = \"lint: allow(x)\";\nlet b = 1; // lint: allow(y)\n";
    let lexed = Lexed::lex(src);
    assert!(!lexed.line_has_marker(1, "lint: allow(x)"), "string body is not a marker");
    assert!(lexed.line_has_marker(2, "lint: allow(y)"));
}

#[test]
fn tokens_cover_the_file_in_order() {
    let src = "a /* c */ \"s\" // t\n b";
    let lexed = Lexed::lex(src);
    let mut at = 0usize;
    for t in &lexed.tokens {
        assert!(t.start >= at, "tokens must not overlap");
        at = t.end;
    }
    assert_eq!(
        lexed.tokens.iter().map(|t| t.kind).collect::<Vec<_>>(),
        vec![
            TokKind::Code,
            TokKind::BlockComment,
            TokKind::Code,
            TokKind::Literal,
            TokKind::Code,
            TokKind::LineComment,
            TokKind::Code,
        ]
    );
}
